"""Query execution with fine-grained provenance capture.

The executor runs a :class:`~repro.db.planner.LogicalPlan` against a
table and produces a :class:`~repro.db.result.ResultSet`. Provenance is
captured *during* grouping — every output row records the tids of the
input tuples in its group — so ranked provenance never has to re-derive
lineage afterwards.

Grouped aggregation is segmented: one stable sort on the combined group
codes yields a :class:`~repro.db.segments.SegmentedValues` layout from
which lineage, group-key columns, and every aggregate column are
produced by vectorized grouped kernels — no Python per-group loop.

Ordering semantics: ORDER BY sorts NULLs last in *both* directions
(ascending and descending), for numeric (NaN-encoded) and string
columns alike; descending order never reverses ties.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..errors import PlanError
from .planner import LogicalPlan
from .provenance import CoarseProvenance, FineProvenance, OpNode
from .result import ResultSet
from .schema import Column, Schema
from .segments import SegmentedValues
from .sqlparse.ast_nodes import SelectStatement, Star
from .table import Table
from .types import ColumnType


def execute_plan(plan: LogicalPlan, table: Table) -> ResultSet:
    """Execute a validated plan against its table."""
    statement = plan.statement
    ops = [OpNode("scan", plan.table_name)]
    base = table
    if statement.where is not None:
        mask = statement.where.eval(base)
        base = base.filter(mask)
        ops.append(OpNode("filter", statement.where.to_sql()))
    if plan.is_aggregate_query:
        output, lineage, key_names, agg_names = _execute_aggregate(plan, base, ops)
    else:
        output, lineage, key_names, agg_names = _execute_projection(plan, base, ops)
    fine = FineProvenance(base, lineage)

    if statement.having is not None:
        having_mask = statement.having.eval(output)
        positions = np.flatnonzero(having_mask)
        output = output.take(positions)
        fine = fine.reorder(list(positions))
        ops.append(OpNode("having", statement.having.to_sql()))

    if statement.order_by:
        positions = _order_positions(statement, output)
        output = output.take(positions)
        fine = fine.reorder(list(positions))
        ops.append(OpNode("order", ", ".join(o.to_sql() for o in statement.order_by)))

    if statement.limit is not None:
        keep = min(statement.limit, len(output))
        positions = np.arange(keep, dtype=np.int64)
        output = output.take(positions)
        fine = fine.reorder(list(positions))
        ops.append(OpNode("limit", str(statement.limit)))

    # Result rows are addressed by position; normalize output tids to 0..n-1.
    output = Table(
        output.schema,
        {name: output.column(name) for name in output.schema.names},
        tids=np.arange(len(output), dtype=np.int64),
        name="result",
    )
    return ResultSet(
        output=output,
        statement=statement,
        fine=fine,
        coarse=CoarseProvenance(tuple(ops)),
        group_key_names=key_names,
        aggregate_names=agg_names,
        source=table,
    )


def _execute_aggregate(
    plan: LogicalPlan, base: Table, ops: list[OpNode]
) -> tuple[Table, list[np.ndarray], tuple[str, ...], tuple[str, ...]]:
    key_arrays = [spec.expr.eval(base) for spec in plan.keys]
    if key_arrays:
        codes, n_groups = _group_codes(key_arrays)
        ops.append(
            OpNode("groupby", ", ".join(spec.expr.to_sql() for spec in plan.keys))
        )
    else:
        codes = np.zeros(len(base), dtype=np.int64)
        n_groups = 1

    # One stable sort groups every downstream pass: lineage, group-key
    # columns, and all aggregate columns come from the same segmented
    # layout with no Python per-group loops.
    order = np.argsort(codes, kind="stable")
    counts = np.bincount(codes, minlength=n_groups)
    offsets = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)

    base_tids = np.asarray(base.tids)
    sorted_tids = base_tids[order]
    if n_groups:
        lineage = list(np.split(sorted_tids, offsets[1:-1]))
    else:
        lineage = []

    out_columns: dict[str, np.ndarray] = {}
    out_schema_cols: list[Column] = []

    if plan.keys:
        # Grouping keys imply every group is non-empty, so the first
        # sorted position of each segment is a valid representative.
        key_first_positions = order[offsets[:-1]]
        for spec_index, spec in enumerate(plan.keys):
            array = key_arrays[spec_index]
            column = array[key_first_positions]
            out_columns[spec.output_name] = _coerce_output(column, spec.ctype)
            out_schema_cols.append(Column(spec.output_name, spec.ctype))

    for spec in plan.aggs:
        values = _agg_input(spec, base)
        seg = SegmentedValues(values[order], offsets)
        agg_out = spec.impl.compute_grouped(seg)
        ctype = ColumnType.INT if spec.impl.name == "count" else ColumnType.FLOAT
        if ctype is ColumnType.INT:
            out_columns[spec.output_name] = agg_out.astype(np.int64)
        else:
            out_columns[spec.output_name] = agg_out
        out_schema_cols.append(Column(spec.output_name, ctype))
        ops.append(OpNode("aggregate", spec.call.to_sql()))

    # Reorder output columns to SELECT order.
    ordered_cols: list[Column] = []
    seen: set[str] = set()
    for kind, index in plan.output_order:
        name = plan.keys[index].output_name if kind == "key" else plan.aggs[index].output_name
        if name in seen:
            continue
        seen.add(name)
        ordered_cols.append(next(c for c in out_schema_cols if c.name == name))
    for column in out_schema_cols:
        if column.name not in seen:
            seen.add(column.name)
            ordered_cols.append(column)
    output = Table(Schema(ordered_cols), out_columns, name="result")
    key_names = tuple(spec.output_name for spec in plan.keys)
    agg_names = tuple(spec.output_name for spec in plan.aggs)
    return output, lineage, key_names, agg_names


def _execute_projection(
    plan: LogicalPlan, base: Table, ops: list[OpNode]
) -> tuple[Table, list[np.ndarray], tuple[str, ...], tuple[str, ...]]:
    out_columns: dict[str, np.ndarray] = {}
    out_schema_cols: list[Column] = []
    for spec in plan.keys:
        array = spec.expr.eval(base)
        out_columns[spec.output_name] = _coerce_output(array, spec.ctype)
        out_schema_cols.append(Column(spec.output_name, spec.ctype))
    ops.append(OpNode("project", ", ".join(spec.output_name for spec in plan.keys)))
    output = Table(Schema(out_schema_cols), out_columns, name="result")
    base_tids = np.asarray(base.tids)
    lineage = [np.array([tid], dtype=np.int64) for tid in base_tids]
    key_names = tuple(spec.output_name for spec in plan.keys)
    return output, lineage, key_names, ()


def _agg_input(spec: Any, base: Table) -> np.ndarray:
    """The numeric argument array for one aggregate over the base table."""
    if isinstance(spec.call.arg, Star):
        return np.ones(len(base), dtype=np.float64)
    values = spec.call.arg.eval(base)
    if values.dtype == object:
        # count() over a categorical column: count non-nulls.
        if spec.impl.name == "count":
            return np.fromiter(
                (np.nan if v is None else 1.0 for v in values),
                dtype=np.float64,
                count=len(values),
            )
        raise PlanError(f"{spec.impl.name}() requires a numeric argument")
    return np.asarray(values, dtype=np.float64)


def _group_codes(key_arrays: list[np.ndarray]) -> tuple[np.ndarray, int]:
    """Combine several key arrays into dense group codes.

    Returns ``(codes, n_groups)`` where ``codes[i]`` is the group index
    of input row ``i``. Groups are ordered by ascending key tuples (the
    order ``np.unique`` produces per key column, combined left-to-right),
    matching the stable ordering the dashboard relies on for the x-axis.
    """
    code_arrays = []
    cardinalities = []
    for array in key_arrays:
        if array.dtype == object:
            # np.unique on object arrays fails on None; map via dict.
            uniques = sorted({v for v in array if v is not None}, key=repr)
            mapping = {value: i for i, value in enumerate(uniques)}
            codes = np.fromiter(
                (mapping.get(v, len(uniques)) for v in array),
                dtype=np.int64,
                count=len(array),
            )
            cardinality = len(uniques) + 1
        else:
            uniques, codes = np.unique(array, return_inverse=True)
            codes = codes.astype(np.int64)
            cardinality = len(uniques)
        code_arrays.append(codes)
        cardinalities.append(max(cardinality, 1))
    combined = np.zeros(len(code_arrays[0]), dtype=np.int64)
    for codes, cardinality in zip(code_arrays, cardinalities):
        combined = combined * cardinality + codes
    unique_codes, inverse = np.unique(combined, return_inverse=True)
    return inverse.astype(np.int64), len(unique_codes)


def _order_positions(statement: SelectStatement, output: Table) -> np.ndarray:
    """Row positions realizing ORDER BY in one ``np.lexsort`` pass.

    Every key expression is evaluated exactly once on the unsorted
    output (no intermediate ``take`` copies), converted to a sortable
    key array, and handed to a single stable lexicographic sort.

    NULL semantics are NULLS LAST in *both* directions, matching the
    numeric behavior (NaN sorts after every float under ascending and
    descending alike): object-column NULLs map to NaN ranks, which
    negation preserves. Descending order is achieved by negating the
    key (never by reversing a stable sort, which would also reverse
    ties).
    """
    keys = [
        _sort_key(item.expr.eval(output), item.descending)
        for item in statement.order_by
    ]
    # lexsort treats its *last* key as primary; ties fall back to the
    # original row order because lexsort is stable overall.
    order = np.lexsort(tuple(reversed(keys)))
    return np.asarray(order, dtype=np.int64)


def _sort_key(values: np.ndarray, descending: bool) -> np.ndarray:
    """One ORDER BY key as an array whose ascending sort realizes it."""
    if values.dtype == object:
        present = sorted({v for v in values if v is not None})
        rank_of = {value: float(i) for i, value in enumerate(present)}
        key = np.fromiter(
            (np.nan if v is None else rank_of[v] for v in values),
            dtype=np.float64,
            count=len(values),
        )
        return -key if descending else key
    array = np.asarray(values)
    if not descending:
        return array
    if array.dtype == np.bool_:
        array = array.astype(np.int64)
    return -array


def _coerce_output(array: np.ndarray, ctype: ColumnType) -> np.ndarray:
    expected = ctype.numpy_dtype
    if array.dtype == expected:
        return array
    if ctype is ColumnType.FLOAT:
        return np.asarray(array, dtype=np.float64)
    if ctype is ColumnType.INT:
        return np.asarray(array, dtype=np.int64)
    if ctype is ColumnType.BOOL:
        return np.asarray(array, dtype=np.bool_)
    out = np.empty(len(array), dtype=object)
    out[:] = array
    return out
