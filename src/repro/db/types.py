"""Column types and value coercion for the in-memory column store.

The engine supports four logical types:

* ``INT`` — stored as ``numpy.int64``.
* ``FLOAT`` — stored as ``numpy.float64`` (``NaN`` encodes NULL).
* ``STR`` — stored as ``numpy.ndarray`` of ``object`` (``None`` encodes NULL).
* ``BOOL`` — stored as ``numpy.bool_``.

These four are sufficient for everything the DBWipes paper touches: sensor
readings, donation amounts, day indexes, categorical attributes such as
candidate names and memo strings.
"""

from __future__ import annotations

import enum
from typing import Any, Iterable

import numpy as np

from ..errors import TypeMismatchError


class ColumnType(enum.Enum):
    """Logical type of a table column."""

    INT = "int"
    FLOAT = "float"
    STR = "str"
    BOOL = "bool"

    @property
    def is_numeric(self) -> bool:
        """Whether values of this type can participate in arithmetic."""
        return self in (ColumnType.INT, ColumnType.FLOAT)

    @property
    def numpy_dtype(self) -> np.dtype:
        """The numpy dtype used to store a column of this type."""
        return _NUMPY_DTYPES[self]

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


_NUMPY_DTYPES = {
    ColumnType.INT: np.dtype(np.int64),
    ColumnType.FLOAT: np.dtype(np.float64),
    ColumnType.STR: np.dtype(object),
    ColumnType.BOOL: np.dtype(np.bool_),
}


def infer_type(values: Iterable[Any]) -> ColumnType:
    """Infer the narrowest :class:`ColumnType` that holds every value.

    ``None`` values are ignored for inference; an all-``None`` column is
    typed ``STR`` because object storage is the only dtype that can hold
    pure NULLs.
    """
    seen_float = False
    seen_int = False
    seen_bool = False
    seen_str = False
    seen_any = False
    for value in values:
        if value is None:
            continue
        seen_any = True
        if isinstance(value, bool) or isinstance(value, np.bool_):
            seen_bool = True
        elif isinstance(value, (int, np.integer)):
            seen_int = True
        elif isinstance(value, (float, np.floating)):
            seen_float = True
        elif isinstance(value, str):
            seen_str = True
        else:
            raise TypeMismatchError(f"cannot infer a column type for value {value!r}")
    if not seen_any:
        return ColumnType.STR
    if seen_str:
        if seen_int or seen_float or seen_bool:
            raise TypeMismatchError("column mixes strings with non-string values")
        return ColumnType.STR
    if seen_float:
        return ColumnType.FLOAT
    if seen_int:
        return ColumnType.INT
    return ColumnType.BOOL


def coerce_array(values: Iterable[Any], ctype: ColumnType) -> np.ndarray:
    """Convert an iterable of Python values into the storage array for ``ctype``.

    NULL handling: ``None`` becomes ``NaN`` in FLOAT columns and stays
    ``None`` in STR columns. ``None`` is rejected for INT and BOOL columns
    because their numpy dtypes have no missing-value representation.
    """
    values = list(values)
    if ctype is ColumnType.FLOAT:
        out = np.empty(len(values), dtype=np.float64)
        for i, value in enumerate(values):
            if value is None:
                out[i] = np.nan
            else:
                out[i] = _as_float(value)
        return out
    if ctype is ColumnType.INT:
        out = np.empty(len(values), dtype=np.int64)
        for i, value in enumerate(values):
            if value is None:
                raise TypeMismatchError("INT columns cannot store NULL; use FLOAT")
            out[i] = _as_int(value)
        return out
    if ctype is ColumnType.BOOL:
        out = np.empty(len(values), dtype=np.bool_)
        for i, value in enumerate(values):
            if value is None:
                raise TypeMismatchError("BOOL columns cannot store NULL")
            if not isinstance(value, (bool, np.bool_)):
                raise TypeMismatchError(f"expected bool, got {value!r}")
            out[i] = bool(value)
        return out
    out = np.empty(len(values), dtype=object)
    for i, value in enumerate(values):
        if value is None:
            out[i] = None
        elif isinstance(value, str):
            out[i] = value
        else:
            raise TypeMismatchError(f"expected str or None, got {value!r}")
    return out


def _as_float(value: Any) -> float:
    if isinstance(value, (bool, np.bool_)):
        raise TypeMismatchError(f"expected number, got bool {value!r}")
    if isinstance(value, (int, float, np.integer, np.floating)):
        return float(value)
    raise TypeMismatchError(f"expected number, got {value!r}")


def _as_int(value: Any) -> int:
    if isinstance(value, (bool, np.bool_)):
        raise TypeMismatchError(f"expected integer, got bool {value!r}")
    if isinstance(value, (int, np.integer)):
        return int(value)
    if isinstance(value, (float, np.floating)) and float(value).is_integer():
        return int(value)
    raise TypeMismatchError(f"expected integer, got {value!r}")


def is_null(value: Any) -> bool:
    """Whether a scalar read out of a column represents NULL."""
    if value is None:
        return True
    if isinstance(value, (float, np.floating)) and np.isnan(value):
        return True
    return False


def dict_encode(values: np.ndarray) -> tuple[np.ndarray, list[str]]:
    """Dictionary-encode a STR object array into int64 codes plus values.

    Codes assign ``0, 1, 2, ...`` in first-occurrence order and ``-1``
    for NULL (``None``). The encoding is a pure function of the logical
    column content, which makes it safe to use both for persistence
    (object arrays cannot be memory-mapped) and for content digests
    (the digest of a column must not depend on physical layout).
    """
    codes = np.empty(len(values), dtype=np.int64)
    mapping: dict[str, int] = {}
    ordered: list[str] = []
    for i, value in enumerate(values):
        if value is None:
            codes[i] = -1
            continue
        code = mapping.get(value)
        if code is None:
            code = len(ordered)
            mapping[value] = code
            ordered.append(value)
        codes[i] = code
    return codes, ordered


def dict_decode(codes: np.ndarray, values: list[str]) -> np.ndarray:
    """Invert :func:`dict_encode` back into a STR object array."""
    lookup = np.empty(len(values) + 1, dtype=object)
    lookup[: len(values)] = values
    lookup[-1] = None
    return lookup[np.asarray(codes, dtype=np.int64)]


def python_value(value: Any) -> Any:
    """Convert a numpy scalar back into a plain Python value for display."""
    if value is None:
        return None
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    return value
