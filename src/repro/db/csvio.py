"""CSV import/export for tables.

The demo imports the FEC dump and the Intel Lab trace from flat files;
this module provides the equivalent ingest path for our synthetic (or any
user-supplied) CSVs, with light type inference: ``int`` then ``float``
then ``str``, empty cells becoming NULL.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Mapping

from ..errors import SchemaError
from .table import Table
from .types import ColumnType


def read_csv(
    path: str | Path,
    types: Mapping[str, ColumnType | str] | None = None,
    name: str | None = None,
) -> Table:
    """Load a CSV with a header row into a :class:`Table`.

    ``types`` overrides inference per column. Empty cells become NULL
    (valid only for FLOAT and STR columns).
    """
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise SchemaError(f"{path} is empty; a header row is required") from None
        raw_rows = [row for row in reader if row]
    if types is None:
        types = {}
    resolved: dict[str, ColumnType] = {}
    for column, ctype in types.items():
        resolved[column] = ColumnType(ctype) if isinstance(ctype, str) else ctype
    columns: dict[str, list] = {column: [] for column in header}
    for row in raw_rows:
        if len(row) != len(header):
            raise SchemaError(
                f"row has {len(row)} cells, header has {len(header)}: {row!r}"
            )
        for column, cell in zip(header, row):
            columns[column].append(cell)
    data = {}
    final_types = {}
    for column in header:
        ctype = resolved.get(column) or _infer_csv_type(columns[column])
        data[column] = [_parse_cell(cell, ctype) for cell in columns[column]]
        final_types[column] = ctype
    return Table.from_columns(data, types=final_types, name=name or path.stem)


def write_csv(table: Table, path: str | Path) -> None:
    """Write a table to CSV with a header row (NULL becomes an empty cell)."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(table.schema.names)
        for row in table.iter_rows():
            writer.writerow(["" if value is None else value for value in row])


def _infer_csv_type(cells: list[str]) -> ColumnType:
    saw_value = False
    could_be_int = True
    could_be_float = True
    for cell in cells:
        if cell == "":
            could_be_int = False  # NULL needs FLOAT or STR storage
            continue
        saw_value = True
        if could_be_int:
            try:
                int(cell)
            except ValueError:
                could_be_int = False
        if could_be_float and not could_be_int:
            try:
                float(cell)
            except ValueError:
                could_be_float = False
    if not saw_value:
        return ColumnType.STR
    if could_be_int:
        return ColumnType.INT
    if could_be_float:
        return ColumnType.FLOAT
    return ColumnType.STR


def _parse_cell(cell: str, ctype: ColumnType):
    if cell == "":
        return None
    if ctype is ColumnType.INT:
        return int(cell)
    if ctype is ColumnType.FLOAT:
        return float(cell)
    if ctype is ColumnType.BOOL:
        return cell.strip().lower() in ("true", "t", "1", "yes")
    return cell
