"""Provenance capture for query execution.

The paper distinguishes *coarse-grained* provenance (the operator graph
that produced a result) from *fine-grained* provenance (the input tuples
behind each output row). DBWipes needs fine-grained provenance as the raw
material for ranked provenance: the Preprocessor's first step is
"compute F, the set of input tuples that generated S".

:class:`FineProvenance` maps each output row of a query to the tids of
the input tuples that fed it, and keeps a handle on the post-WHERE base
table so those tids can be dereferenced to values without re-running the
query. :class:`CoarseProvenance` records the operator pipeline — it is
deliberately uninformative for aggregate debugging, which is exactly the
limitation the paper's introduction calls out (every input flows through
the same operators), and the baseline benchmarks exercise it as such.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from ..errors import ProvenanceError
from .table import Table


@dataclass(frozen=True)
class OpNode:
    """One operator in the coarse-grained provenance graph."""

    op: str
    detail: str = ""

    def __str__(self) -> str:
        return f"{self.op}({self.detail})" if self.detail else self.op


@dataclass(frozen=True)
class CoarseProvenance:
    """The linear operator pipeline that produced a result set."""

    nodes: tuple[OpNode, ...] = field(default_factory=tuple)

    def describe(self) -> str:
        """Human-readable pipeline, e.g. ``scan -> filter -> groupby -> aggregate``."""
        return " -> ".join(str(node) for node in self.nodes)


class FineProvenance:
    """Fine-grained lineage: output row index -> input tuple ids.

    ``base`` is the table *after* the WHERE clause was applied (tids are
    preserved from the source table), so every recorded tid can be
    dereferenced against it.
    """

    def __init__(self, base: Table, lineage: Sequence[np.ndarray]):
        self._base = base
        self._lineage = [np.asarray(tids, dtype=np.int64) for tids in lineage]

    @property
    def base(self) -> Table:
        """The post-WHERE input table the lineage tids point into."""
        return self._base

    @property
    def num_rows(self) -> int:
        """Number of output rows with recorded lineage."""
        return len(self._lineage)

    def lineage(self, row: int) -> np.ndarray:
        """Tids of the input tuples behind output row ``row``."""
        if row < 0 or row >= len(self._lineage):
            raise ProvenanceError(f"no lineage recorded for output row {row}")
        return self._lineage[row]

    def lineage_many(self, rows: Iterable[int]) -> np.ndarray:
        """Union (concatenation, deduplicated) of lineage for several rows."""
        parts = [self.lineage(row) for row in rows]
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(parts))

    def lineage_table(self, row: int) -> Table:
        """The input tuples behind output row ``row`` as a table."""
        return self._base.take_tids(self.lineage(row))

    def lineage_table_many(self, rows: Iterable[int]) -> Table:
        """The union of input tuples behind several output rows as a table."""
        return self._base.take_tids(self.lineage_many(rows))

    def all_tids(self) -> np.ndarray:
        """Every tid that contributed to any output row."""
        return self.lineage_many(range(len(self._lineage)))

    def reorder(self, positions: Sequence[int]) -> "FineProvenance":
        """Lineage re-indexed after the output rows were reordered/filtered."""
        return FineProvenance(self._base, [self._lineage[p] for p in positions])

    def sizes(self) -> np.ndarray:
        """Per-output-row lineage sizes (how many inputs fed each row)."""
        return np.array([len(tids) for tids in self._lineage], dtype=np.int64)
