"""The telemetry kill switch.

Instrumentation is always-on by default (the overhead budget in
``benchmarks/test_obs_overhead.py`` proves it stays ≤ 5% of a warm
``debug()``), but the benchmark's ablation baseline — and any
latency-paranoid deployment — can turn spans, stage histograms, and
slow-request logging into no-ops, either programmatically
(:func:`set_enabled`) or via ``REPRO_OBS_DISABLED=1`` in the
environment (which spawned workers inherit).

Lives in its own module so :mod:`repro.obs.trace`, :mod:`.metrics`, and
:mod:`.logs` can all read one flag without import cycles.
"""

from __future__ import annotations

import os

_TRUTHY = ("1", "true", "yes", "on")


def _from_env() -> bool:
    return os.environ.get("REPRO_OBS_DISABLED", "").strip().lower() not in _TRUTHY


_ENABLED = _from_env()


def enabled() -> bool:
    """Whether instrumentation records anything in this process."""
    return _ENABLED


def set_enabled(value: bool) -> None:
    """Flip instrumentation on/off for this process (tests, benchmarks)."""
    global _ENABLED
    _ENABLED = bool(value)


def reset_from_env() -> None:
    """Re-read ``REPRO_OBS_DISABLED`` (worker startup after spawn)."""
    global _ENABLED
    _ENABLED = _from_env()
