"""Unified telemetry for the DBWipes reproduction.

Three pillars, all dependency-free and always-on-cheap:

* :mod:`repro.obs.metrics` — process-local Counter/Gauge/Histogram
  primitives behind one global named registry, with cluster merging
  (counters summed, histogram buckets summed — ratios recomputed, never
  averaged) and Prometheus text rendering.
* :mod:`repro.obs.trace` — trace/span context minted at the server
  accept path and propagated through the wire envelope, the router, and
  the worker pipe into per-stage backend execution; recent traces live
  in a per-process ring buffer, recoverable as one JSON span tree.
* :mod:`repro.obs.logs` — structured JSON-line logging correlated by
  trace id, plus the slow-request log feeding ROADMAP's admission
  control work.

``repro.obs.flags.set_enabled(False)`` (or ``REPRO_OBS_DISABLED=1``)
turns the hot-path instrumentation off; ``benchmarks/test_obs_overhead.py``
uses that ablation to prove the enabled overhead stays within budget.
"""

from __future__ import annotations

from .flags import enabled, reset_from_env, set_enabled
from .logs import (
    StructuredLogger,
    log_to_stderr,
    logger,
    maybe_log_slow,
    set_slow_threshold,
    slow_threshold,
)
from .metrics import (
    CORE_METRICS,
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
    registry,
    render_prometheus,
)
from .trace import (
    Tracer,
    from_wire,
    new_id,
    render_tree,
    span,
    span_tree,
    tracer,
    wire_context,
)

__all__ = [
    "CORE_METRICS",
    "LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "StructuredLogger",
    "Tracer",
    "enabled",
    "from_wire",
    "log_to_stderr",
    "logger",
    "maybe_log_slow",
    "merge_snapshots",
    "new_id",
    "registry",
    "render_prometheus",
    "render_tree",
    "reset_from_env",
    "set_enabled",
    "set_slow_threshold",
    "slow_threshold",
    "span",
    "span_tree",
    "tracer",
    "wire_context",
]
