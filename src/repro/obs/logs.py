"""Structured JSON-line logging with trace-id correlation.

Every record is one JSON object per line — machine-greppable, with the
active trace id stamped automatically so a slow-request line can be
joined against its span tree (``python -m repro connect`` → ``trace``).

The module keeps one process-global :class:`StructuredLogger` plus the
slow-request policy: any request whose wall time exceeds
:func:`slow_threshold` seconds gets a ``slow_request`` record and bumps
``dbwipes_slow_requests_total``. The threshold is configurable per
process (:func:`set_slow_threshold`) or via the
``REPRO_SLOW_REQUEST_SECONDS`` environment variable, which the serve
CLI exports so spawned workers inherit the same policy.

Records always land in a bounded in-memory ring (``recent()``) so tests
and the ``metrics`` command can read them back without capturing
stderr; emitting to a stream is opt-in (:func:`log_to_stderr`, or
``REPRO_OBS_LOG_STDERR=1`` for worker processes).
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from collections import deque
from typing import Any, TextIO

from .flags import enabled
from .trace import tracer

DEFAULT_SLOW_SECONDS = 1.0
_LOG_CAPACITY = 256


def _threshold_from_env() -> float:
    raw = os.environ.get("REPRO_SLOW_REQUEST_SECONDS", "").strip()
    if not raw:
        return DEFAULT_SLOW_SECONDS
    try:
        value = float(raw)
    except ValueError:
        return DEFAULT_SLOW_SECONDS
    return value if value >= 0 else DEFAULT_SLOW_SECONDS


_SLOW_SECONDS = _threshold_from_env()


def slow_threshold() -> float:
    """Seconds beyond which a request is logged as slow."""
    return _SLOW_SECONDS


def set_slow_threshold(seconds: float) -> None:
    """Set the slow-request threshold for this process (≥ 0)."""
    global _SLOW_SECONDS
    _SLOW_SECONDS = max(0.0, float(seconds))


class StructuredLogger:
    """JSON-line logger with a bounded ring of recent records."""

    def __init__(self, stream: TextIO | None = None, capacity: int = _LOG_CAPACITY):
        self.stream = stream
        self._lock = threading.Lock()
        self._recent: deque[dict] = deque(maxlen=capacity)

    def log(self, event: str, **fields: Any) -> dict:
        """Record one event; trace id is stamped from the live context."""
        record: dict[str, Any] = {"ts": time.time(), "event": event}
        current = tracer().current()
        if current is not None:
            record["trace_id"] = current[0]
        record.update(fields)
        with self._lock:
            self._recent.append(record)
            stream = self.stream
        if stream is not None:
            try:
                stream.write(json.dumps(record, sort_keys=True) + "\n")
                stream.flush()
            except (OSError, ValueError):
                pass  # a closed/broken stream must never fail a request
        return record

    def recent(self, event: str | None = None) -> list[dict]:
        """Recent records, optionally filtered by event name."""
        with self._lock:
            records = list(self._recent)
        if event is None:
            return records
        return [r for r in records if r.get("event") == event]

    def clear(self) -> None:
        with self._lock:
            self._recent.clear()


_LOGGER = StructuredLogger(
    stream=sys.stderr
    if os.environ.get("REPRO_OBS_LOG_STDERR", "").strip().lower()
    in ("1", "true", "yes", "on")
    else None
)


def logger() -> StructuredLogger:
    """The process-global structured logger."""
    return _LOGGER


def log_to_stderr(on: bool = True) -> None:
    """Mirror structured records to stderr (the serve CLI turns this on)."""
    _LOGGER.stream = sys.stderr if on else None


def maybe_log_slow(cmd: str, seconds: float, **fields: Any) -> bool:
    """Log (and count) a slow request; returns True when it was slow.

    Called from every dispatch path with the request's wall time; the
    registry import is deferred to keep module import order flexible.
    """
    if not enabled() or seconds < _SLOW_SECONDS:
        return False
    from .metrics import registry

    registry().counter(
        "dbwipes_slow_requests_total",
        labels={"cmd": cmd},
        help="Requests slower than the slow-request threshold.",
    ).inc()
    _LOGGER.log(
        "slow_request",
        cmd=cmd,
        seconds=round(seconds, 6),
        threshold=_SLOW_SECONDS,
        **fields,
    )
    return True
