"""Request tracing: trace/span context and the recent-trace ring buffer.

One *trace* is one request's story across the whole stack: the server
accept path mints a trace id, the wire envelope carries it across the
router and the worker pipe transport, and the execution backend opens a
span per pipeline stage (plus per-partition block spans), so a single
``debug()`` yields one tree::

    server.debug (front end)
    └─ router.debug (worker=1)
       └─ worker.debug (worker process)
          └─ pipeline.debug
             ├─ stage.preprocess
             │  ├─ partition.block (index=0)
             │  └─ partition.block (index=1)
             ├─ stage.enumerate_datasets
             ├─ stage.enumerate_predicates
             ├─ stage.rank
             └─ stage.merge

Spans are process-local: each process's :class:`Tracer` keeps a ring
buffer of its recent traces' *finished* spans, and the ``trace`` wire
command scatter-gathers them by trace id into one JSON tree
(:func:`span_tree`). Context propagates through
:mod:`contextvars` inside a process and through the ``trace`` field of
the wire message between processes (:func:`wire_context`,
:func:`from_wire`).

Always-on-cheap: an enabled span is a dict, two clock reads, and one
deque append; :func:`~repro.obs.flags.set_enabled` (or
``REPRO_OBS_DISABLED=1``) turns spans into no-ops for the overhead
ablation in ``benchmarks/test_obs_overhead.py``.
"""

from __future__ import annotations

import contextvars
import os
import threading
import time
from collections import OrderedDict
from contextlib import contextmanager
from typing import Any, Iterator

from .flags import enabled

#: Ring-buffer limits: how many distinct traces a process remembers and
#: how many spans one trace may accumulate before further spans are
#: counted but dropped (a runaway fan-out must not balloon memory).
MAX_TRACES = 64
MAX_SPANS_PER_TRACE = 512

#: (trace_id, span_id) of the active span in this thread/task.
_CURRENT: contextvars.ContextVar[tuple[str, str] | None] = contextvars.ContextVar(
    "repro_obs_span", default=None
)


def new_id() -> str:
    """A 16-hex-char id, unique across processes (no seeding, no clock)."""
    return os.urandom(8).hex()


class ActiveSpan:
    """The mutable handle yielded by :func:`Tracer.span`."""

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "attrs", "start")

    def __init__(self, trace_id, span_id, parent_id, name, attrs, start):
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.attrs = attrs
        self.start = start

    def set(self, **attrs: Any) -> None:
        """Attach attributes to the span (JSON-safe values only)."""
        self.attrs.update(attrs)


class _NullSpan:
    """The disabled-path handle: same surface, no recording."""

    __slots__ = ()
    trace_id = None
    span_id = None

    def set(self, **attrs: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Tracer:
    """Per-process span recorder with a bounded recent-trace buffer."""

    def __init__(
        self,
        max_traces: int = MAX_TRACES,
        max_spans_per_trace: int = MAX_SPANS_PER_TRACE,
    ):
        self.max_traces = max_traces
        self.max_spans_per_trace = max_spans_per_trace
        self._lock = threading.Lock()
        #: trace_id -> list of finished span dicts, oldest trace first.
        self._traces: OrderedDict[str, list[dict]] = OrderedDict()
        self._dropped: dict[str, int] = {}

    @contextmanager
    def span(
        self,
        name: str,
        trace_id: str | None = None,
        parent_id: str | None = None,
        **attrs: Any,
    ) -> Iterator[ActiveSpan | _NullSpan]:
        """Open one span; finished spans land in the ring buffer.

        With no explicit ``trace_id`` the span continues the thread's
        current trace (or mints a fresh one at a root). An explicit
        ``trace_id``/``parent_id`` pair grafts onto a remote parent —
        that is how the wire context crosses processes.
        """
        if not enabled():
            yield _NULL_SPAN
            return
        if trace_id is None:
            current = _CURRENT.get()
            if current is not None:
                trace_id, parent_id = current
            else:
                trace_id = new_id()
        span_id = new_id()
        active = ActiveSpan(
            trace_id, span_id, parent_id, name, dict(attrs), time.time()
        )
        token = _CURRENT.set((trace_id, span_id))
        t0 = time.perf_counter()
        try:
            yield active
        except BaseException as error:
            active.attrs.setdefault("error", type(error).__name__)
            raise
        finally:
            duration = time.perf_counter() - t0
            _CURRENT.reset(token)
            self._record(active, duration)

    def _record(self, span: ActiveSpan, duration: float) -> None:
        record = {
            "trace_id": span.trace_id,
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "name": span.name,
            "start": span.start,
            "seconds": duration,
            "attrs": span.attrs,
        }
        with self._lock:
            spans = self._traces.get(span.trace_id)
            if spans is None:
                spans = []
                self._traces[span.trace_id] = spans
                while len(self._traces) > self.max_traces:
                    old, __ = self._traces.popitem(last=False)
                    self._dropped.pop(old, None)
            else:
                self._traces.move_to_end(span.trace_id)
            if len(spans) >= self.max_spans_per_trace:
                self._dropped[span.trace_id] = (
                    self._dropped.get(span.trace_id, 0) + 1
                )
            else:
                spans.append(record)

    # -- recovery ------------------------------------------------------

    def current(self) -> tuple[str, str] | None:
        """The active (trace_id, span_id) in this thread, if any."""
        return _CURRENT.get()

    def spans(self, trace_id: str) -> list[dict]:
        """Finished spans of one trace (start-ordered), possibly empty."""
        with self._lock:
            return sorted(
                (dict(s) for s in self._traces.get(trace_id, ())),
                key=lambda s: s["start"],
            )

    def dropped(self, trace_id: str) -> int:
        """Spans dropped from a trace by the per-trace cap."""
        with self._lock:
            return self._dropped.get(trace_id, 0)

    def trace_ids(self) -> list[str]:
        """Known trace ids, least recently touched first."""
        with self._lock:
            return list(self._traces)

    def last_trace_id(self, exclude: str | None = None) -> str | None:
        """The most recently touched trace id, skipping ``exclude``."""
        with self._lock:
            for trace_id in reversed(self._traces):
                if trace_id != exclude:
                    return trace_id
        return None

    def clear(self) -> None:
        """Drop every buffered trace (worker startup / tests)."""
        with self._lock:
            self._traces.clear()
            self._dropped.clear()


_TRACER = Tracer()


def tracer() -> Tracer:
    """The process-global tracer."""
    return _TRACER


def span(name: str, **kwargs: Any):
    """Shorthand for ``tracer().span(...)`` at call sites."""
    return _TRACER.span(name, **kwargs)


# ----------------------------------------------------------------------
# wire propagation
# ----------------------------------------------------------------------


def wire_context(span_handle) -> dict | None:
    """The ``trace`` field value carrying ``span_handle`` across a hop."""
    if span_handle.trace_id is None:
        return None
    return {"id": span_handle.trace_id, "parent": span_handle.span_id}


def from_wire(message: Any) -> tuple[str | None, str | None]:
    """(trace_id, parent_id) from a wire message's ``trace`` field."""
    if not isinstance(message, dict):
        return None, None
    context = message.get("trace")
    if not isinstance(context, dict):
        return None, None
    trace_id = context.get("id")
    parent_id = context.get("parent")
    return (
        trace_id if isinstance(trace_id, str) else None,
        parent_id if isinstance(parent_id, str) else None,
    )


# ----------------------------------------------------------------------
# tree assembly (merging spans gathered from many processes)
# ----------------------------------------------------------------------


def span_tree(spans: list[dict]) -> list[dict]:
    """Nest a flat span list into parent→children trees.

    Spans whose parent is absent from the list (or None) become roots.
    Children sort by start time; the input may mix spans collected from
    different processes — ids are globally unique, so linking is safe.
    """
    nodes = {s["span_id"]: {**s, "children": []} for s in spans}
    roots: list[dict] = []
    for node in nodes.values():
        parent = nodes.get(node.get("parent_id"))
        if parent is None:
            roots.append(node)
        else:
            parent["children"].append(node)
    def sort_children(node: dict) -> None:
        node["children"].sort(key=lambda child: child["start"])
        for child in node["children"]:
            sort_children(child)
    roots.sort(key=lambda node: node["start"])
    for root in roots:
        sort_children(root)
    return roots


def render_tree(roots: list[dict], indent: int = 0) -> str:
    """An ASCII rendering of a span tree (the CLI's trace view)."""
    lines: list[str] = []
    for root in roots:
        attrs = root.get("attrs") or {}
        suffix = (
            " [" + " ".join(f"{k}={v}" for k, v in sorted(attrs.items())) + "]"
            if attrs
            else ""
        )
        lines.append(
            f"{'  ' * indent}{root['name']}  "
            f"{root['seconds'] * 1000:.2f}ms{suffix}"
        )
        lines.append(render_tree(root["children"], indent + 1))
    return "\n".join(line for line in lines if line)
