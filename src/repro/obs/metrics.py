"""Process-local metrics primitives and the named registry.

Three primitives, all thread-safe behind one per-metric lock:

* :class:`Counter` — a monotonically increasing float (requests served,
  cache hits, worker respawns). Cluster merge rule: **sum**.
* :class:`Gauge` — a point-in-time value (open sessions, live workers).
  Cluster merge rule: **sum** (each process reports its own share).
* :class:`Histogram` — cumulative fixed-bucket counts plus sum/count,
  Prometheus-style (every observation lands in all buckets whose upper
  bound it does not exceed). Cluster merge rule: **bucket-wise sum**.

The :class:`MetricsRegistry` names metrics ``name{label="value"}``; one
process-global registry (:func:`registry`) absorbs the ad-hoc counters
the system already computed — ``PreprocessCache`` hit/miss/eviction
counts, ``SessionManager`` eviction stats, ``WorkerPool`` crash/respawn
counts, per-stage pipeline timings — so every number lands in one place
instead of N bespoke dicts.

Registration is get-or-create: asking for the same (name, labels) again
returns the same object, which is what lets N ``PreprocessCache``
instances in one process share one process-wide counter. Re-registering
a name as a *different* metric type raises
:class:`~repro.errors.ObservabilityError` — the registry smoke test in
CI relies on that to catch metric-name collisions at review time.

Derived ratios (cache hit rates, averages) are **never** stored as
metrics: exposition recomputes them from the summed counters, because
averaging per-worker rates is wrong whenever consistent hashing skews
load across shards.
"""

from __future__ import annotations

import bisect
import threading
from typing import Iterable, Mapping, Sequence

from ..errors import ObservabilityError

#: Fixed latency buckets (seconds) shared by every duration histogram —
#: fixed so that cluster merging is a plain bucket-wise sum with no
#: bucket realignment. Spans four orders of magnitude around the
#: interactive-latency budget the demo argues about.
LATENCY_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

LabelsArg = Mapping[str, str] | None
#: Canonical metric key: (name, ((label, value), ...)) sorted by label.
MetricKey = tuple[str, tuple[tuple[str, str], ...]]


def _labels_key(labels: LabelsArg) -> tuple[tuple[str, str], ...]:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_name(name: str, labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing value. Merge rule: sum."""

    kind = "counter"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ObservabilityError("counters only go up; use a Gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def dump(self) -> dict:
        return {"value": self.value}


class Gauge:
    """A point-in-time value. Merge rule: sum of per-process shares."""

    kind = "gauge"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def dump(self) -> dict:
        return {"value": self.value}


class Histogram:
    """Fixed-bucket cumulative histogram (Prometheus semantics).

    ``bounds`` are the finite upper bounds; an implicit +Inf bucket
    catches the tail. ``observe`` is a bisect plus two adds under one
    lock — cheap enough to stay always-on in the debug hot path.
    """

    kind = "histogram"

    def __init__(self, bounds: Sequence[float] = LATENCY_BUCKETS) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ObservabilityError(
                "histogram bounds must be non-empty, unique, and ascending"
            )
        self.bounds = bounds
        self._lock = threading.Lock()
        #: Per-bound counts plus the +Inf tail at index -1 (non-cumulative
        #: internally; dumped cumulatively, as Prometheus renders them).
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        index = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def dump(self) -> dict:
        with self._lock:
            cumulative = []
            running = 0
            for count in self._counts[:-1]:
                running += count
                cumulative.append(running)
            return {
                "bounds": list(self.bounds),
                "buckets": cumulative,
                "sum": self._sum,
                "count": self._count,
            }


class MetricsRegistry:
    """A named, labeled registry of metrics for one process.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create; the only
    error is re-registering a (name, labels) pair as a different kind —
    a real bug the CI smoke check exists to catch.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[MetricKey, Counter | Gauge | Histogram] = {}
        self._help: dict[str, str] = {}
        self._generation = 0

    def _get_or_create(self, name, labels, kind, factory, help):
        if not name or not name.replace("_", "a").isalnum():
            raise ObservabilityError(
                f"metric name {name!r} must be non-empty [a-zA-Z0-9_]"
            )
        key: MetricKey = (name, _labels_key(labels))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = factory()
                self._metrics[key] = metric
                if help and name not in self._help:
                    self._help[name] = help
            elif metric.kind != kind:
                raise ObservabilityError(
                    f"metric {_render_name(*key)!r} is already registered "
                    f"as a {metric.kind}, not a {kind}"
                )
            return metric

    def counter(self, name: str, labels: LabelsArg = None, help: str = "") -> Counter:
        return self._get_or_create(name, labels, "counter", Counter, help)

    def gauge(self, name: str, labels: LabelsArg = None, help: str = "") -> Gauge:
        return self._get_or_create(name, labels, "gauge", Gauge, help)

    def histogram(
        self,
        name: str,
        labels: LabelsArg = None,
        bounds: Sequence[float] = LATENCY_BUCKETS,
        help: str = "",
    ) -> Histogram:
        return self._get_or_create(
            name, labels, "histogram", lambda: Histogram(bounds), help
        )

    def names(self) -> set[str]:
        """Every registered metric name (label sets collapsed)."""
        with self._lock:
            return {name for name, __ in self._metrics}

    def snapshot(self) -> dict:
        """A JSON-safe dump of every metric: the exposition wire format.

        ``{"metrics": [{"name", "labels", "kind", ...dump}], "help": {}}``
        — a flat list (not a dict keyed by rendered name) so merge code
        never has to re-parse label strings.
        """
        with self._lock:
            items = list(self._metrics.items())
            help = dict(self._help)
        return {
            "metrics": [
                {
                    "name": name,
                    "labels": [list(pair) for pair in labels],
                    "kind": metric.kind,
                    **metric.dump(),
                }
                for (name, labels), metric in items
            ],
            "help": help,
        }

    @property
    def generation(self) -> int:
        """Bumped by :meth:`clear` so hot paths can cache metric objects.

        A call site that keeps a :class:`Counter`/:class:`Histogram`
        reference (instead of re-resolving the name per event) compares
        this to the generation it cached under — after a worker-startup
        ``clear()`` the cached object is detached from the registry and
        must be re-fetched, or its increments would silently vanish from
        the process's snapshot.
        """
        with self._lock:
            return self._generation

    def clear(self) -> None:
        """Drop every metric (worker startup / tests)."""
        with self._lock:
            self._metrics.clear()
            self._help.clear()
            self._generation += 1


# ----------------------------------------------------------------------
# the process-global registry
# ----------------------------------------------------------------------

_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-global registry every subsystem reports into."""
    return _REGISTRY


# ----------------------------------------------------------------------
# cluster merging + rendering
# ----------------------------------------------------------------------


def merge_snapshots(snapshots: Iterable[dict]) -> dict:
    """Merge per-process registry snapshots into one cluster snapshot.

    Counters and gauges sum; histograms sum bucket-wise (their bounds
    are fixed, so same-name histograms always align — mismatched bounds
    raise rather than silently misreport). Ratios are *not* merged here:
    recompute hit rates and means from the summed counters downstream.
    """
    merged: dict[MetricKey, dict] = {}
    help: dict[str, str] = {}
    for snapshot in snapshots:
        if not isinstance(snapshot, dict):
            continue
        for name, text in (snapshot.get("help") or {}).items():
            help.setdefault(name, text)
        for entry in snapshot.get("metrics", ()):
            key: MetricKey = (
                entry["name"],
                tuple((k, v) for k, v in entry.get("labels", ())),
            )
            seen = merged.get(key)
            if seen is None:
                copied = dict(entry)
                copied["labels"] = [list(pair) for pair in key[1]]
                if entry["kind"] == "histogram":
                    copied["buckets"] = list(entry["buckets"])
                merged[key] = copied
                continue
            if seen["kind"] != entry["kind"]:
                raise ObservabilityError(
                    f"metric {_render_name(*key)!r} has conflicting kinds "
                    f"across processes: {seen['kind']} vs {entry['kind']}"
                )
            if entry["kind"] == "histogram":
                if list(seen["bounds"]) != list(entry["bounds"]):
                    raise ObservabilityError(
                        f"histogram {_render_name(*key)!r} has mismatched "
                        "buckets across processes"
                    )
                seen["buckets"] = [
                    a + b for a, b in zip(seen["buckets"], entry["buckets"])
                ]
                seen["sum"] += entry["sum"]
                seen["count"] += entry["count"]
            else:
                seen["value"] += entry["value"]
    return {
        "metrics": [
            merged[key] for key in sorted(merged, key=lambda k: (k[0], k[1]))
        ],
        "help": help,
    }


def render_prometheus(snapshot: dict) -> str:
    """A registry (or merged) snapshot in Prometheus text format."""
    by_name: dict[str, list[dict]] = {}
    for entry in snapshot.get("metrics", ()):
        by_name.setdefault(entry["name"], []).append(entry)
    help = snapshot.get("help") or {}
    lines: list[str] = []
    for name in sorted(by_name):
        entries = by_name[name]
        if name in help:
            lines.append(f"# HELP {name} {help[name]}")
        lines.append(f"# TYPE {name} {entries[0]['kind']}")
        for entry in entries:
            labels = tuple((k, v) for k, v in entry.get("labels", ()))
            if entry["kind"] == "histogram":
                for bound, count in zip(entry["bounds"], entry["buckets"]):
                    le = labels + (("le", format(bound, "g")),)
                    lines.append(f"{_render_name(name + '_bucket', le)} {count}")
                inf = labels + (("le", "+Inf"),)
                lines.append(
                    f"{_render_name(name + '_bucket', inf)} {entry['count']}"
                )
                lines.append(
                    f"{_render_name(name + '_sum', labels)} "
                    f"{format(entry['sum'], 'g')}"
                )
                lines.append(
                    f"{_render_name(name + '_count', labels)} {entry['count']}"
                )
            else:
                lines.append(
                    f"{_render_name(name, labels)} "
                    f"{format(entry['value'], 'g')}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


#: The metric names the README's reference table documents. The CI
#: registry smoke check drives one debug cycle through a 2-worker
#: server and asserts every one of these shows up in the cluster-merged
#: snapshot — an exposition that names an unregistered metric (or a
#: rename that orphans the docs) fails fast.
CORE_METRICS = (
    "dbwipes_preprocess_cache_hits_total",
    "dbwipes_preprocess_cache_misses_total",
    "dbwipes_preprocess_cache_evictions_total",
    "dbwipes_sessions_open",
    "dbwipes_session_requests_total",
    "dbwipes_session_lru_evictions_total",
    "dbwipes_session_ttl_evictions_total",
    "dbwipes_worker_requests_total",
    "dbwipes_worker_respawns_total",
    "dbwipes_worker_timeouts_total",
    "dbwipes_worker_crashed_requests_total",
    "dbwipes_requests_total",
    "dbwipes_request_seconds",
    "dbwipes_slow_requests_total",
    "dbwipes_debugs_total",
    "dbwipes_stage_seconds",
    "dbwipes_partition_blocks_total",
    "dbwipes_partition_block_seconds",
    # Fault tolerance (PR 10) — registered at construction time by the
    # RoutingDispatcher (failovers/breaker/drains) and SessionManager
    # (recoveries), so they expose at zero before any fault occurs.
    "dbwipes_failovers_total",
    "dbwipes_breaker_state",
    "dbwipes_drains_total",
    "dbwipes_sessions_recovered_total",
)
