"""The asyncio gateway: cheap/heavy lanes, admission control, per-client
rate limiting, streamed partial ``debug`` frames, and routed async mode.

Reuses the deterministic "toy" dataset from ``test_service`` so every
socket round-trip stays fast; the saturation/throughput comparison at
scale lives in ``benchmarks/test_service_throughput.py``.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.core import PipelineConfig
from repro.db import Database
from repro.errors import ServiceError
from repro.service import (
    AsyncDBWipesServer,
    DBWipesServer,
    ServiceClient,
    SessionManager,
    TokenBucket,
)
from repro.service.protocol import PROTOCOL_VERSION

from test_service import TOY_SQL, run_debug_cycle, toy_catalog, toy_table


def strip_timings(payload: dict) -> dict:
    """Report payloads minus the wall-clock ``timings`` block.

    Timings differ between any two runs; everything else must be
    byte-identical across servers and across streamed/non-streamed
    paths."""
    out = dict(payload)
    out.pop("timings", None)
    return out


def canonical(payload: dict) -> str:
    return json.dumps(strip_timings(payload), sort_keys=True)


def routed_toy_catalog():
    """Module-level so worker processes can reconstruct it."""
    return toy_catalog(toy_table())


# ----------------------------------------------------------------------
# TokenBucket
# ----------------------------------------------------------------------


class _FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = _FakeClock()
        bucket = TokenBucket(rate=1.0, burst=2.0, clock=clock)
        assert bucket.try_take()
        assert bucket.try_take()
        assert not bucket.try_take()  # burst exhausted
        assert bucket.seconds_until() == pytest.approx(1.0)
        clock.advance(1.0)
        assert bucket.try_take()
        assert not bucket.try_take()

    def test_refill_caps_at_burst(self):
        clock = _FakeClock()
        bucket = TokenBucket(rate=10.0, burst=3.0, clock=clock)
        clock.advance(100.0)  # long idle: tokens cap at burst, not 1000
        for _ in range(3):
            assert bucket.try_take()
        assert not bucket.try_take()

    def test_seconds_until_is_zero_when_affordable(self):
        bucket = TokenBucket(rate=5.0, burst=5.0, clock=_FakeClock())
        assert bucket.seconds_until() == 0.0


# ----------------------------------------------------------------------
# Local (executor) mode
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def shared_table():
    return toy_table()


@pytest.fixture(scope="module")
def async_server(shared_table):
    manager = SessionManager(
        catalog=toy_catalog(shared_table),
        config=PipelineConfig(merge_predicates=True),
    )
    with AsyncDBWipesServer(manager, port=0, max_inflight=2, max_queue=16) as srv:
        yield srv


@pytest.fixture()
def async_client(async_server):
    host, port = async_server.address
    with ServiceClient(host, port, session="async-rt", timeout=60) as c:
        yield c


class TestCheapLane:
    def test_ping_reports_protocol_v2(self, async_client):
        pong = async_client.ping()
        assert pong["version"] == PROTOCOL_VERSION
        assert pong.get("workers", 0) == 0

    def test_stats_sessions_metrics_answer(self, async_client):
        stats = async_client.stats()
        assert "sessions" in stats
        assert isinstance(async_client.sessions(), list)
        metrics = async_client.metrics()
        assert "merged" in metrics


class TestFullSurfaceParity:
    def test_async_debug_cycle_matches_threaded_server(self, shared_table):
        """The same scripted cycle must produce the same payload (minus
        wall-clock timings) through either front end."""
        config = PipelineConfig(merge_predicates=True)

        def fresh_manager():
            return SessionManager(
                catalog=toy_catalog(shared_table), config=config
            )

        with DBWipesServer(fresh_manager(), port=0) as threaded:
            with ServiceClient(*threaded.address, session="t") as c:
                threaded_report = run_debug_cycle(c)
        with AsyncDBWipesServer(fresh_manager(), port=0) as gateway:
            with ServiceClient(*gateway.address, session="a") as c:
                async_report = run_debug_cycle(c)
        assert canonical(async_report) == canonical(threaded_report)
        assert async_report["n_predicates"] >= 1


class TestStreamingDebug:
    def test_partial_frames_then_identical_final(self, async_client):
        run_debug_cycle(async_client)  # plain debug to set up state
        baseline = async_client.debug()
        frames = list(async_client.debug_stream())
        partials = [f for f in frames if f["partial"]]
        # At least the post-rank snapshot streams; merge rounds add more.
        assert len(partials) >= 1
        assert frames[-1]["partial"] is False
        assert all(not f["partial"] for f in frames[-1:])
        # seq is contiguous from 0 and stages are the documented ones.
        assert [f["seq"] for f in partials] == list(range(len(partials)))
        assert partials[0]["result"]["stage"] == "rank"
        assert {f["result"]["stage"] for f in partials} <= {"rank", "merge"}
        for frame in partials:
            snapshot = frame["result"]
            assert snapshot["n_predicates"] == len(snapshot["predicates"])
            scores = [p["score"] for p in snapshot["predicates"]]
            assert scores == sorted(scores, reverse=True)
        # The terminating frame is byte-identical to a plain debug().
        assert canonical(frames[-1]["result"]) == canonical(baseline)

    def test_plain_call_with_stream_flag_drains_partials(self, async_client):
        run_debug_cycle(async_client)
        baseline = async_client.debug()
        # call() (not stream()) with stream=True: partial frames arrive
        # on the wire but the client drains them and returns the final
        # envelope — no desync, same answer.
        result = async_client.call("debug", stream=True)
        assert canonical(result) == canonical(baseline)
        assert async_client.ping()["version"] == PROTOCOL_VERSION


class TestAdmissionControl:
    def test_saturated_gateway_sheds_and_recovers(self, shared_table):
        release = threading.Event()
        catalog = toy_catalog(shared_table)

        def build_slow() -> Database:
            assert release.wait(20.0)
            db = Database()
            db.create_table(
                "s",
                {"g": [0, 1], "v": [1.0, 2.0]},
                types={"g": "int", "v": "float"},
            )
            return db

        catalog.register(
            "slow", build_slow, bootstrap="SELECT g, avg(v) AS a FROM s GROUP BY g"
        )
        manager = SessionManager(catalog=catalog)
        with AsyncDBWipesServer(
            manager, port=0, max_inflight=1, max_queue=0
        ) as srv:
            host, port = srv.address

            def occupy():
                with ServiceClient(host, port, session="slowpoke") as c:
                    # Retry in case a probe request holds the slot first.
                    c.call_with_retry(
                        "open", dataset="slow", name="slowpoke", retries=100
                    )

            holder = threading.Thread(target=occupy)
            holder.start()
            try:
                # Wait until the slow open actually holds the only slot.
                deadline = time.monotonic() + 10.0
                while (
                    srv.gateway_stats()["inflight"] < 1
                    and time.monotonic() < deadline
                ):
                    time.sleep(0.005)
                assert srv.gateway_stats()["inflight"] == 1
                with ServiceClient(host, port, session="shed-me") as c:
                    with pytest.raises(ServiceError) as excinfo:
                        c.open("toy")  # heavy: saturated + zero queue
                    shed = excinfo.value
                    assert shed.kind == "ServerBusy"
                    assert shed.retry_after is not None and shed.retry_after > 0
                    # The cheap lane answers even while the heavy lane is
                    # saturated — liveness under overload.
                    assert c.ping()["version"] == PROTOCOL_VERSION
                    release.set()
                    holder.join(10.0)
                    assert not holder.is_alive()
                    # With capacity back, the busy-aware retry helper
                    # finishes the request instead of surfacing the shed.
                    opened = c.call_with_retry(
                        "open", dataset="toy", name="shed-me"
                    )
                    assert opened["dataset"] == "toy"
            finally:
                release.set()
                holder.join(10.0)
            assert srv.gateway_stats()["shed"] >= 1
            assert srv.gateway_stats()["inflight"] == 0
            assert srv.gateway_stats()["waiting"] == 0

    def test_idle_gateway_with_zero_queue_admits_requests(self, shared_table):
        """max_queue=0 means "never wait", not "never work": a free slot
        must still admit (regression — the shed gate used to fire on
        queue depth alone)."""
        manager = SessionManager(catalog=toy_catalog(shared_table))
        with AsyncDBWipesServer(
            manager, port=0, max_inflight=1, max_queue=0
        ) as srv:
            with ServiceClient(*srv.address, session="solo") as c:
                c.open("toy")
                c.execute(TOY_SQL)
            assert srv.gateway_stats()["shed"] == 0


class TestRateLimiting:
    def test_per_connection_bucket_sheds_second_heavy_call(self, shared_table):
        manager = SessionManager(catalog=toy_catalog(shared_table))
        with AsyncDBWipesServer(
            manager, port=0, rate=0.001, burst=1.0
        ) as srv:
            host, port = srv.address
            with ServiceClient(host, port, session="greedy") as c:
                c.open("toy")  # spends the only token
                with pytest.raises(ServiceError) as excinfo:
                    c.execute(TOY_SQL)
                assert excinfo.value.kind == "ServerBusy"
                assert excinfo.value.retry_after > 0
                # Cheap commands are never rate limited.
                assert c.ping()["version"] == PROTOCOL_VERSION
            # A fresh connection gets a fresh bucket.
            with ServiceClient(host, port, session="greedy") as c2:
                c2.execute(TOY_SQL)


class TestRoutedAsyncGateway:
    def test_routed_cycle_matches_and_streams(self):
        pytest.importorskip("multiprocessing")
        with AsyncDBWipesServer(
            port=0, workers=2, catalog_factory=routed_toy_catalog
        ) as srv:
            host, port = srv.address
            with ServiceClient(host, port, session="routed", timeout=120) as c:
                pong = c.ping()
                assert pong["version"] == PROTOCOL_VERSION
                assert pong["workers"] == 2
                report = run_debug_cycle(c)
                assert report["n_predicates"] >= 1
                # Workers stream partial frames back over the pipe: the
                # routed debug_stream behaves like the in-process one.
                frames = list(c.debug_stream())
                partials = [f for f in frames if f["partial"]]
                assert len(partials) >= 1
                assert [f["seq"] for f in partials] == list(
                    range(len(partials))
                )
                assert frames[-1]["partial"] is False
                assert canonical(frames[-1]["result"]) == canonical(c.debug())
                # Broadcast cheap commands merge across workers.
                stats = c.stats()
                assert stats["workers"] == 2
                assert "merged" in c.metrics()
