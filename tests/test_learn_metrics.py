"""Tests for repro.learn.metrics and repro.learn.discretize."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LearnError
from repro.learn import (
    bin_index,
    confusion,
    entropy,
    equal_frequency_edges,
    equal_width_edges,
    gini_impurity,
    jaccard,
    mdl_entropy_edges,
    precision_recall_f1,
    split_info,
    wracc,
)


class TestImpurity:
    def test_gini_pure_is_zero(self):
        assert gini_impurity(10, 0) == 0.0
        assert gini_impurity(0, 10) == 0.0

    def test_gini_balanced_is_half(self):
        assert gini_impurity(5, 5) == pytest.approx(0.5)

    def test_gini_empty_is_zero(self):
        assert gini_impurity(0, 0) == 0.0

    def test_entropy_pure_is_zero(self):
        assert entropy(7, 0) == 0.0

    def test_entropy_balanced_is_one_bit(self):
        assert entropy(4, 4) == pytest.approx(1.0)

    def test_split_info_balanced(self):
        assert split_info(5, 5) == pytest.approx(1.0)

    @settings(max_examples=40, deadline=None)
    @given(
        p=st.floats(min_value=0, max_value=100, allow_nan=False),
        n=st.floats(min_value=0, max_value=100, allow_nan=False),
    )
    def test_gini_bounds(self, p, n):
        value = gini_impurity(p, n)
        assert 0.0 <= value <= 0.5 + 1e-12


class TestWRAcc:
    def test_zero_for_random_rule(self):
        # Covering half the data with exactly the base rate of positives.
        assert wracc(100, 40, 50, 20) == pytest.approx(0.0)

    def test_positive_for_enriched_rule(self):
        assert wracc(100, 40, 20, 20) > 0

    def test_negative_for_depleted_rule(self):
        assert wracc(100, 40, 20, 0) < 0

    def test_empty_coverage_is_zero(self):
        assert wracc(100, 40, 0, 0) == 0.0

    def test_requires_positive_total(self):
        with pytest.raises(LearnError):
            wracc(0, 0, 0, 0)

    @settings(max_examples=40, deadline=None)
    @given(
        total=st.floats(min_value=1, max_value=1000),
        pos_frac=st.floats(min_value=0, max_value=1),
        cov_frac=st.floats(min_value=0, max_value=1),
        prec=st.floats(min_value=0, max_value=1),
    )
    def test_bound_by_base_rate_product(self, total, pos_frac, cov_frac, prec):
        pos = total * pos_frac
        covered = total * cov_frac
        # Consistent counts: covered positives can be at most min(covered,
        # pos) and at least covered + pos - total (inclusion-exclusion).
        low = max(0.0, covered + pos - total)
        high = min(covered, pos)
        covered_pos = low + prec * (high - low)
        value = wracc(total, pos, covered, covered_pos)
        bound = pos_frac * (1 - pos_frac) + 1e-9
        assert abs(value) <= bound


class TestConfusion:
    def test_counts(self):
        y_true = np.array([1, 1, 0, 0, 1], dtype=bool)
        y_pred = np.array([1, 0, 1, 0, 1], dtype=bool)
        c = confusion(y_true, y_pred)
        assert (c.tp, c.fp, c.fn, c.tn) == (2, 1, 1, 1)
        assert c.accuracy == pytest.approx(0.6)
        assert c.precision == pytest.approx(2 / 3)
        assert c.recall == pytest.approx(2 / 3)

    def test_f1_harmonic_mean(self):
        y_true = np.array([1, 1, 0, 0], dtype=bool)
        y_pred = np.array([1, 0, 0, 0], dtype=bool)
        p, r, f1 = precision_recall_f1(y_true, y_pred)
        assert f1 == pytest.approx(2 * p * r / (p + r))

    def test_degenerate_cases(self):
        empty_pred = confusion(np.array([True]), np.array([False]))
        assert empty_pred.precision == 0.0
        no_pos = confusion(np.array([False]), np.array([False]))
        assert no_pos.recall == 0.0
        assert no_pos.f1 == 0.0

    def test_weighted(self):
        y_true = np.array([1, 0], dtype=bool)
        y_pred = np.array([1, 1], dtype=bool)
        c = confusion(y_true, y_pred, sample_weight=np.array([3.0, 1.0]))
        assert c.tp == 3.0 and c.fp == 1.0

    def test_shape_mismatch(self):
        with pytest.raises(LearnError):
            confusion(np.array([True]), np.array([True, False]))

    def test_jaccard(self):
        assert jaccard(np.array([1, 2, 3]), np.array([2, 3, 4])) == pytest.approx(0.5)
        assert jaccard(np.array([]), np.array([])) == 1.0


class TestDiscretize:
    def test_equal_width_count_and_spacing(self):
        values = np.linspace(0, 100, 101)
        edges = equal_width_edges(values, 4)
        assert edges == pytest.approx([25.0, 50.0, 75.0])

    def test_equal_width_constant_column(self):
        assert equal_width_edges(np.full(10, 3.0), 4) == []

    def test_equal_width_ignores_nan(self):
        values = np.array([0.0, np.nan, 10.0])
        edges = equal_width_edges(values, 2)
        assert edges == pytest.approx([5.0])

    def test_equal_frequency_quantiles(self):
        values = np.arange(100, dtype=np.float64)
        edges = equal_frequency_edges(values, 4)
        assert len(edges) == 3
        assert edges[1] == pytest.approx(49.5)

    def test_equal_frequency_dedupes(self):
        values = np.array([1.0] * 90 + [2.0] * 10)
        edges = equal_frequency_edges(values, 10)
        assert len(edges) <= 1

    def test_bins_must_be_positive(self):
        with pytest.raises(LearnError):
            equal_width_edges(np.array([1.0]), 0)

    def test_mdl_finds_class_boundary(self):
        rng = np.random.default_rng(0)
        values = np.concatenate([rng.uniform(0, 10, 200), rng.uniform(20, 30, 50)])
        labels = values > 15
        edges = mdl_entropy_edges(values, labels)
        assert len(edges) >= 1
        assert any(10 <= e <= 20 for e in edges)

    def test_mdl_no_cut_for_random_labels(self):
        rng = np.random.default_rng(1)
        values = rng.uniform(0, 1, 300)
        labels = rng.random(300) > 0.5
        assert mdl_entropy_edges(values, labels) == []

    def test_mdl_shape_mismatch(self):
        with pytest.raises(LearnError):
            mdl_entropy_edges(np.array([1.0]), np.array([True, False]))

    def test_bin_index(self):
        edges = [10.0, 20.0]
        values = np.array([5.0, 10.0, 15.0, 25.0, np.nan])
        assert bin_index(values, edges).tolist() == [0, 1, 1, 2, -1]

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
            min_size=2,
            max_size=50,
        ),
        st.integers(min_value=1, max_value=8),
    )
    def test_edges_sorted_and_interior(self, values, bins):
        array = np.array(values)
        for edges in (
            equal_width_edges(array, bins),
            equal_frequency_edges(array, bins),
        ):
            assert edges == sorted(edges)
            if edges:
                assert min(edges) > array.min() - 1e-9
                assert max(edges) < array.max() + 1e-9
