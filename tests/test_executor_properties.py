"""Property-based tests of the query engine's core invariants.

These are the invariants ranked provenance silently depends on:

* group-by partitions: every input row lands in exactly one group's
  lineage (after WHERE), so influence never double-counts a tuple;
* aggregate decomposition: the sum of per-group sums equals the total
  sum; per-group counts add up to the filtered row count;
* WHERE + NOT(WHERE) partition the table (the clean-as-you-query rewrite
  relies on predicate complements being true complements);
* executing a statement's ``to_sql()`` rendering reproduces the result.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import Database, Table, parse_select
from repro.db.predicate import NumericClause, Predicate


@st.composite
def random_table(draw):
    n = draw(st.integers(min_value=1, max_value=80))
    rng = np.random.default_rng(draw(st.integers(min_value=0, max_value=10**6)))
    groups = rng.integers(0, draw(st.integers(min_value=1, max_value=6)), n)
    keys = np.array(
        [["red", "green", "blue"][i] for i in rng.integers(0, 3, n)],
        dtype=object,
    )
    values = np.round(rng.normal(0, 50, n), 3)
    return Table.from_columns(
        {"g": groups, "k": list(keys), "v": values},
        types={"g": "int", "k": "str", "v": "float"},
    )


class TestGroupByInvariants:
    @settings(max_examples=40, deadline=None)
    @given(table=random_table())
    def test_lineage_partitions_input(self, table):
        db = Database()
        db.register(table, "t")
        result = db.sql("SELECT g, k, count(*) FROM t GROUP BY g, k")
        seen: list[int] = []
        for row in range(result.num_rows):
            seen.extend(int(t) for t in result.lineage(row))
        assert sorted(seen) == sorted(int(t) for t in table.tids)

    @settings(max_examples=40, deadline=None)
    @given(table=random_table())
    def test_group_sums_add_to_total(self, table):
        db = Database()
        db.register(table, "t")
        result = db.sql("SELECT g, sum(v) AS s, count(*) AS n FROM t GROUP BY g")
        total = float(np.asarray(result.column("s")).sum())
        assert total == pytest.approx(float(np.asarray(table["v"]).sum()),
                                      rel=1e-9, abs=1e-6)
        assert int(np.asarray(result.column("n")).sum()) == len(table)

    @settings(max_examples=40, deadline=None)
    @given(table=random_table())
    def test_group_values_match_lineage_recomputation(self, table):
        """Each group's aggregate equals recomputing over its lineage."""
        db = Database()
        db.register(table, "t")
        result = db.sql("SELECT k, avg(v) AS m FROM t GROUP BY k ORDER BY k")
        for row in range(result.num_rows):
            lineage_table = result.lineage_table(row)
            expected = float(np.asarray(lineage_table["v"]).mean())
            assert result.row(row)[1] == pytest.approx(expected, rel=1e-9)


class TestComplementInvariant:
    @settings(max_examples=40, deadline=None)
    @given(
        table=random_table(),
        lo=st.floats(min_value=-100, max_value=100, allow_nan=False),
        width=st.floats(min_value=0.1, max_value=100, allow_nan=False),
    )
    def test_predicate_and_negation_partition(self, table, lo, width):
        predicate = Predicate([NumericClause("v", lo, lo + width)])
        db = Database()
        db.register(table, "t")
        kept = db.sql(f"SELECT v FROM t WHERE {predicate.to_sql()}")
        removed = db.sql(
            f"SELECT v FROM t WHERE {predicate.negated_expr().to_sql()}"
        )
        assert kept.num_rows + removed.num_rows == len(table)

    @settings(max_examples=30, deadline=None)
    @given(table=random_table())
    def test_to_sql_roundtrip_same_result(self, table):
        db = Database()
        db.register(table, "t")
        statement = parse_select(
            "SELECT g, sum(v) AS s FROM t WHERE v > -10 GROUP BY g ORDER BY g"
        )
        first = db.sql(statement)
        second = db.sql(statement.to_sql())
        assert list(first.iter_rows()) == list(second.iter_rows())


class TestRewriteSemantics:
    @settings(max_examples=30, deadline=None)
    @given(
        table=random_table(),
        threshold=st.floats(min_value=-50, max_value=50, allow_nan=False),
    )
    def test_cleaning_equals_deletion(self, table, threshold):
        """Rewriting with NOT(p) must equal running on a table with p's
        tuples physically deleted — the core clean-as-you-query promise."""
        predicate = Predicate([NumericClause("v", threshold, None)])
        db = Database()
        db.register(table, "t")
        statement = parse_select("SELECT g, sum(v) AS s FROM t GROUP BY g ORDER BY g")
        rewritten = statement.with_extra_filter(predicate.negated_expr())
        via_rewrite = db.sql(rewritten)

        physically = table.filter(~predicate.mask(table))
        db2 = Database()
        db2.register(physically, "t")
        via_delete = db2.sql(statement)
        assert list(via_rewrite.iter_rows()) == list(via_delete.iter_rows())
