"""Tests for the Predicate Enumerator and Predicate Ranker stages."""

import numpy as np
import pytest

from repro.core import (
    DatasetEnumerator,
    PredicateEnumerator,
    PredicateRanker,
    Preprocessor,
    RankerWeights,
    TooHigh,
    TreeStrategy,
)
from repro.db import Database
from repro.errors import PipelineError


@pytest.fixture
def stage_setup():
    rng = np.random.default_rng(21)
    n = 200
    sensor = np.concatenate([rng.integers(1, 6, 170), np.full(30, 9)])
    temp = np.concatenate([rng.uniform(18, 24, 170), rng.uniform(100, 120, 30)])
    db = Database()
    db.create_table(
        "r",
        {"sensorid": sensor, "temp": temp, "g": np.zeros(n, dtype=np.int64)},
        types={"sensorid": "int", "temp": "float", "g": "int"},
    )
    result = db.sql("SELECT g, avg(temp) AS m FROM r GROUP BY g")
    pre = Preprocessor().run(result, [0], TooHigh(30.0))
    candidates = DatasetEnumerator().run(pre, np.arange(170, 200))
    return pre, candidates


class TestPredicateEnumerator:
    def test_produces_rules_per_candidate(self, stage_setup):
        pre, candidates = stage_setup
        rules = PredicateEnumerator().run(pre, candidates)
        assert rules
        assert {r.candidate_index for r in rules} <= set(range(len(candidates)))

    def test_strategy_sources_recorded(self, stage_setup):
        pre, candidates = stage_setup
        strategies = (
            TreeStrategy(criterion="gini"),
            TreeStrategy(criterion="entropy"),
        )
        rules = PredicateEnumerator(strategies=strategies).run(pre, candidates)
        sources = {r.rule.source for r in rules}
        assert any(s.startswith("tree:gini") for s in sources)

    def test_rep_pruning_strategy_runs(self, stage_setup):
        pre, candidates = stage_setup
        strategies = (TreeStrategy(criterion="gini", prune="rep"),)
        rules = PredicateEnumerator(strategies=strategies, seed=3).run(pre, candidates)
        assert rules

    def test_feature_restriction(self, stage_setup):
        pre, candidates = stage_setup
        rules = PredicateEnumerator(feature_columns=("sensorid",)).run(pre, candidates)
        for candidate_rule in rules:
            if candidate_rule.rule.source.startswith("tree"):
                assert candidate_rule.rule.predicate.columns() <= {"sensorid"}

    def test_weight_by_influence(self, stage_setup):
        pre, candidates = stage_setup
        rules = PredicateEnumerator(weight_by_influence=True).run(pre, candidates)
        assert rules

    def test_requires_strategies(self):
        with pytest.raises(PipelineError):
            PredicateEnumerator(strategies=())

    def test_validation_fraction_bounds(self):
        with pytest.raises(PipelineError):
            PredicateEnumerator(validation_fraction=0.0)


class TestPredicateRanker:
    def test_rank_order_is_descending_score(self, stage_setup):
        pre, candidates = stage_setup
        rules = PredicateEnumerator().run(pre, candidates)
        ranked = PredicateRanker().run(pre, candidates, rules)
        scores = [r.score for r in ranked]
        assert scores == sorted(scores, reverse=True)

    def test_top_predicate_fixes_error(self, stage_setup):
        pre, candidates = stage_setup
        rules = PredicateEnumerator().run(pre, candidates)
        ranked = PredicateRanker().run(pre, candidates, rules)
        best = ranked[0]
        assert best.epsilon_after < best.epsilon_before
        assert best.relative_error_reduction > 0.9

    def test_components_populated(self, stage_setup):
        pre, candidates = stage_setup
        rules = PredicateEnumerator().run(pre, candidates)
        ranked = PredicateRanker().run(pre, candidates, rules)
        for entry in ranked:
            assert entry.n_matched > 0
            assert 0 <= entry.accuracy <= 1
            assert entry.complexity >= 1
            assert entry.candidate_origin
            assert entry.source

    def test_complexity_penalty_breaks_ties(self, stage_setup):
        pre, candidates = stage_setup
        rules = PredicateEnumerator().run(pre, candidates)
        heavy_penalty = PredicateRanker(
            weights=RankerWeights(error=1.0, accuracy=0.0, complexity=10.0)
        ).run(pre, candidates, rules)
        # With a crushing complexity weight, the top predicate must be
        # among the simplest available.
        min_complexity = min(r.complexity for r in heavy_penalty)
        assert heavy_penalty[0].complexity == min_complexity

    def test_nonpositive_error_reduction_dropped(self, stage_setup):
        pre, candidates = stage_setup
        rules = PredicateEnumerator().run(pre, candidates)
        ranked = PredicateRanker(drop_nonpositive_error=True).run(
            pre, candidates, rules
        )
        for entry in ranked:
            assert entry.error_reduction > 0

    def test_duplicate_predicates_deduped(self, stage_setup):
        pre, candidates = stage_setup
        rules = PredicateEnumerator().run(pre, candidates)
        ranked = PredicateRanker().run(pre, candidates, rules)
        predicates = [r.predicate for r in ranked]
        assert len(predicates) == len(set(predicates))

    def test_negative_weights_rejected(self):
        with pytest.raises(PipelineError):
            RankerWeights(error=-1.0)

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(PipelineError):
            PredicateRanker(algorithm="nope")


class TestBatchReferenceParity:
    """The batched scorer must match the per-rule reference exactly."""

    @staticmethod
    def _lines(ranked):
        return [
            "|".join(
                (
                    entry.predicate.describe(),
                    repr(entry.score),
                    repr(entry.epsilon_after),
                    repr(entry.accuracy),
                    repr(entry.precision),
                    repr(entry.recall),
                    str(entry.n_matched),
                    entry.candidate_origin,
                    entry.source,
                )
            )
            for entry in ranked
        ]

    def test_batch_is_byte_identical_to_per_rule(self, stage_setup):
        pre, candidates = stage_setup
        rules = PredicateEnumerator().run(pre, candidates)
        batch = PredicateRanker(algorithm="batch").run(pre, candidates, rules)
        reference = PredicateRanker(algorithm="per_rule").run(pre, candidates, rules)
        assert self._lines(batch) == self._lines(reference)
        assert batch  # the comparison is not vacuous

    def test_batch_parity_without_nonpositive_drop(self, stage_setup):
        pre, candidates = stage_setup
        rules = PredicateEnumerator().run(pre, candidates)
        batch = PredicateRanker(
            algorithm="batch", drop_nonpositive_error=False
        ).run(pre, candidates, rules)
        reference = PredicateRanker(
            algorithm="per_rule", drop_nonpositive_error=False
        ).run(pre, candidates, rules)
        assert self._lines(batch) == self._lines(reference)

    def test_mask_engine_memoized_on_preprocess_result(self, stage_setup):
        pre, candidates = stage_setup
        rules = PredicateEnumerator().run(pre, candidates)
        PredicateRanker().run(pre, candidates, rules)
        keys = [k for k in pre._column_memo if k[0] == "mask_engine"]
        assert len(keys) == 1
        engine = pre.mask_engine()
        stats = engine.stats()
        assert stats["predicates"] > 0
        # A re-rank reuses the cached clause/predicate masks.
        PredicateRanker().run(pre, candidates, rules)
        assert engine.stats() == stats
