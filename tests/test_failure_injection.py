"""Failure-injection tests: the pipeline under hostile inputs.

NULL-ridden columns, constant columns, groups that vanish entirely under
cleaning, selections covering everything, duplicate user selections —
the library must degrade gracefully (empty-but-valid reports, exact
errors), never crash or return garbage.
"""

import numpy as np
import pytest

from repro.core import PipelineConfig, RankedProvenance, TooHigh, TooLow
from repro.db import Database, Table
from repro.errors import PipelineError
from repro.frontend import Brush, DBWipesSession


@pytest.fixture
def nully_db():
    rng = np.random.default_rng(17)
    n = 120
    values = rng.normal(10, 1, n)
    values[rng.random(n) < 0.2] = np.nan  # 20% NULL measurements
    bad = np.arange(100, 120)
    values[bad] = rng.normal(50, 2, 20)
    k = np.array(["ok"] * n, dtype=object)
    k[bad] = "bad"
    k[rng.random(n) < 0.1] = None  # NULL categories too
    db = Database()
    db.create_table(
        "t",
        {"v": values, "k": list(k), "g": [0] * n},
        types={"v": "float", "k": "str", "g": "int"},
    )
    return db, bad


class TestNullTolerance:
    def test_pipeline_survives_nulls(self, nully_db):
        db, bad = nully_db
        result = db.sql("SELECT g, avg(v) AS m FROM t GROUP BY g")
        report = RankedProvenance().debug(
            result, [0], TooHigh(12.0), dprime_tids=bad
        )
        assert len(report) > 0
        best_columns = report.best.predicate.columns()
        assert best_columns <= {"v", "k", "g"}

    def test_aggregates_over_all_null_group(self):
        db = Database()
        db.create_table(
            "t",
            {"v": [None, None, 3.0], "g": [0, 0, 1]},
            types={"v": "float", "g": "int"},
        )
        result = db.sql("SELECT g, avg(v) AS m, count(v) AS n FROM t GROUP BY g "
                        "ORDER BY g")
        assert result.row(0)[2] == 0  # count skips NULLs
        assert np.isnan(result.row(0)[1])

    def test_metric_ignores_vanished_groups(self):
        # A NaN aggregate value (emptied group) contributes zero error.
        metric = TooHigh(5.0)
        assert metric(np.array([np.nan, np.nan])) == 0.0


class TestDegenerateSelections:
    def test_all_rows_selected(self, nully_db):
        db, bad = nully_db
        result = db.sql("SELECT k, avg(v) AS m FROM t GROUP BY k ORDER BY k")
        all_rows = list(range(result.num_rows))
        report = RankedProvenance().debug(result, all_rows, TooHigh(12.0))
        assert report.epsilon >= 0  # runs; may or may not find predicates

    def test_duplicate_selection_rows(self, nully_db):
        db, __ = nully_db
        result = db.sql("SELECT g, avg(v) AS m FROM t GROUP BY g")
        report = RankedProvenance().debug(result, [0, 0, 0], TooHigh(12.0))
        assert report.epsilon >= 0

    def test_dprime_equals_F(self, nully_db):
        db, __ = nully_db
        result = db.sql("SELECT g, avg(v) AS m FROM t GROUP BY g")
        all_tids = result.fine.all_tids()
        # D' = everything: candidates are degenerate (labels all positive)
        # but the pipeline must not crash.
        report = RankedProvenance().debug(
            result, [0], TooHigh(12.0), dprime_tids=all_tids
        )
        assert report.epsilon > 0

    def test_error_free_selection_gives_empty_report(self, nully_db):
        db, __ = nully_db
        result = db.sql("SELECT g, avg(v) AS m FROM t GROUP BY g")
        report = RankedProvenance().debug(result, [0], TooHigh(1e9))
        assert report.epsilon == 0.0
        assert len(report) == 0


class TestConstantColumns:
    def test_constant_feature_columns_never_split(self):
        db = Database()
        db.create_table(
            "t",
            {
                "v": [1.0, 1.0, 1.0, 50.0, 50.0],
                "const_num": [7.0] * 5,
                "const_cat": ["same"] * 5,
                "g": [0] * 5,
            },
            types={"v": "float", "const_num": "float", "const_cat": "str",
                   "g": "int"},
        )
        result = db.sql("SELECT g, avg(v) AS m FROM t GROUP BY g")
        report = RankedProvenance().debug(
            result, [0], TooHigh(5.0), dprime_tids=[3, 4]
        )
        for ranked in report:
            assert "const_num" not in ranked.predicate.columns()
            assert "const_cat" not in ranked.predicate.columns()


class TestSessionRobustness:
    def test_cleaning_that_empties_result(self):
        db = Database()
        db.create_table(
            "t",
            {"v": [100.0, 120.0], "k": ["x", "x"], "g": [0, 0]},
            types={"v": "float", "k": "str", "g": "int"},
        )
        session = DBWipesSession(db)
        session.execute("SELECT g, avg(v) AS m FROM t GROUP BY g")
        session.select_results([0])
        session.zoom()
        session.select_inputs(Brush.above(0.0))  # everything
        session.set_metric(TooHigh(10.0))
        report = session.debug()
        if len(report):
            result = session.apply_predicate(0)
            # The group may vanish entirely; that must be a valid result.
            assert result.num_rows in (0, 1)

    def test_empty_query_result_brush(self):
        db = Database()
        db.create_table("t", {"v": [1.0], "g": [0]},
                        types={"v": "float", "g": "int"})
        session = DBWipesSession(db)
        session.execute("SELECT g, avg(v) AS m FROM t WHERE v > 100 GROUP BY g")
        assert session.result.num_rows == 0
        assert session.select_results(Brush.above(0.0)) == ()

    def test_preprocessor_rejects_empty_lineage_selection(self):
        db = Database()
        db.create_table("t", {"v": [1.0], "g": [0]},
                        types={"v": "float", "g": "int"})
        result = db.sql("SELECT g, avg(v) AS m FROM t WHERE v > 100 GROUP BY g")
        with pytest.raises(PipelineError):
            RankedProvenance().debug(result, [0], TooHigh(0.0))


class TestWorkerFailure:
    """A killed worker must yield a structured error, then a respawn.

    The serving contract: a routed request never ends in a hung
    connection — a dead worker produces a ``WorkerCrashed`` envelope,
    the process is respawned, and a reopened session lands on the fresh
    process and works.
    """

    def test_killed_worker_reports_and_respawns(self):
        pytest.importorskip("multiprocessing")
        import time

        from repro.cli import BOOTSTRAP_QUERIES
        from repro.errors import ServiceError
        from repro.obs import registry
        from repro.service import DBWipesServer, ServiceClient

        server = DBWipesServer(port=0, workers=2)
        host, port = server.start()
        try:
            client = ServiceClient(host, port)
            info = client.open("intel", session="victim")
            worker = info["worker"]
            handle = server.pool.workers[worker]
            old_pid = handle.process.pid

            # The crash/respawn counters live in the front-end process
            # (this one): read them before the kill, assert the deltas.
            labels = {"worker": str(worker)}
            m_respawns = registry().counter(
                "dbwipes_worker_respawns_total", labels=labels
            )
            m_crashed = registry().counter(
                "dbwipes_worker_crashed_requests_total", labels=labels
            )
            respawns_before = m_respawns.value
            crashed_before = m_crashed.value

            client.execute(BOOTSTRAP_QUERIES["intel"])
            handle.process.kill()

            # The next routed request must come back as a structured
            # WorkerCrashed error — not a timeout, not a dead socket.
            with pytest.raises(ServiceError) as excinfo:
                client.call("sql", session="victim")
            assert excinfo.value.kind in ("WorkerCrashed", "UnknownSession")

            # The handle respawns a fresh process and counts the restart.
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline and not (
                handle.alive and handle.process.pid != old_pid
            ):
                time.sleep(0.05)
            assert handle.alive
            assert handle.restarts >= 1
            assert handle.process.pid != old_pid

            # The dead worker's placements are gone: the session is
            # unknown at the front until reopened.
            with pytest.raises(ServiceError) as excinfo:
                client.call("sql", session="victim")
            assert excinfo.value.kind == "UnknownSession"

            # Reopening routes back to the same shard (consistent hash)
            # and the fresh process serves it end to end.
            info2 = client.open("intel", session="victim")
            assert info2["worker"] == worker
            client.execute(BOOTSTRAP_QUERIES["intel"])
            client.select_results(brush={"above": 2.0}, y="std_temp")
            client.set_metric("too_high")
            report = client.debug(max_rows=3)
            assert report["n_predicates"] > 0

            stats = client.stats()
            assert stats["per_worker"][worker]["restarts"] >= 1

            # The failure made it into the telemetry registry: one
            # respawn and at least one request failed by the crash...
            assert m_respawns.value >= respawns_before + 1
            assert m_crashed.value >= crashed_before + 1
            # ...and both surface in the cluster-merged metrics the
            # ``metrics`` command exposes.
            merged = client.metrics()["merged"]
            totals: dict[str, float] = {}
            for metric in merged["metrics"]:
                if metric["kind"] == "counter":
                    totals[metric["name"]] = (
                        totals.get(metric["name"], 0.0) + metric["value"]
                    )
            assert totals["dbwipes_worker_respawns_total"] >= 1
            assert totals["dbwipes_worker_crashed_requests_total"] >= 1
            client.close()
        finally:
            server.stop()

    def test_send_to_dead_worker_is_structured(self):
        from repro.service.workers import WorkerPool

        with WorkerPool(1) as pool:
            handle = pool.workers[0]
            assert pool.call(0, {"id": 1, "cmd": "ping"})["ok"]
            handle.process.kill()
            handle.process.join(timeout=5)
            # Either the send fails fast (pipe already closed) or the
            # reader notices first; both are WorkerCrashed envelopes.
            envelope = pool.call(0, {"id": 2, "cmd": "ping"}, timeout=10)
            if not envelope.get("ok"):
                assert envelope["error"]["kind"] == "WorkerCrashed"
            # The pool heals: a later call reaches the respawned worker.
            import time

            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                envelope = pool.call(0, {"id": 3, "cmd": "ping"}, timeout=10)
                if envelope.get("ok"):
                    break
                time.sleep(0.05)
            assert envelope.get("ok")
            assert handle.restarts >= 1

    def test_pool_close_then_call_is_structured(self):
        from repro.service.workers import WorkerPool

        pool = WorkerPool(1)
        pool.close()
        envelope = pool.call(0, {"id": 9, "cmd": "ping"})
        assert not envelope["ok"]
        assert envelope["error"]["kind"] == "WorkerCrashed"


class TestGatewayFloodNeverHangs:
    """Flooding the async gateway far past ``max_inflight`` must resolve
    every request — a result or a structured ``ServerBusy`` with a
    ``retry_after`` hint, never a hung connection."""

    @staticmethod
    def _flood(host, port, n_threads, per_thread, cmd_args):
        """Hammer the gateway; returns (successes, sheds). Any other
        outcome (timeout, protocol error, hang) propagates and fails."""
        import threading

        from repro.errors import ServiceError
        from repro.service import ServiceClient

        successes = [0] * n_threads
        sheds = [0] * n_threads
        errors = []

        def worker(slot):
            try:
                with ServiceClient(host, port, timeout=30) as client:
                    for _ in range(per_thread):
                        try:
                            client.call(**cmd_args)
                            successes[slot] += 1
                        except ServiceError as error:
                            if error.kind != "ServerBusy":
                                raise
                            assert error.retry_after is not None
                            assert error.retry_after > 0
                            sheds[slot] += 1
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(120)
            assert not thread.is_alive(), "flood request hung"
        assert errors == [], f"non-ServerBusy failures: {errors!r}"
        return sum(successes), sum(sheds)

    @staticmethod
    def _toy_manager():
        from repro.service import SessionManager
        from test_service import toy_catalog, toy_table

        return SessionManager(catalog=toy_catalog(toy_table()))

    def test_local_flood_past_max_inflight_resolves_everything(self):
        from repro.service import AsyncDBWipesServer, ServiceClient

        with AsyncDBWipesServer(
            self._toy_manager(), port=0, max_inflight=1, max_queue=2
        ) as srv:
            host, port = srv.address
            with ServiceClient(host, port, session="seed") as seed:
                seed.open("toy")
            ok, shed = self._flood(
                host,
                port,
                n_threads=8,
                per_thread=6,
                cmd_args={"cmd": "open", "session": "seed", "dataset": "toy",
                          "name": "seed"},
            )
            assert ok + shed == 8 * 6  # every request accounted for
            assert ok >= 1  # the gateway still did real work
            stats = srv.gateway_stats()
            assert stats["inflight"] == 0 and stats["waiting"] == 0
            assert stats["shed"] >= shed  # loop-side count agrees

    def test_routed_flood_through_worker_router_resolves_everything(self):
        pytest.importorskip("multiprocessing")
        from repro.service import AsyncDBWipesServer, ServiceClient
        from test_async_service import routed_toy_catalog

        with AsyncDBWipesServer(
            port=0,
            workers=2,
            catalog_factory=routed_toy_catalog,
            max_inflight=2,
            max_queue=2,
        ) as srv:
            host, port = srv.address
            with ServiceClient(host, port, session="seed") as seed:
                seed.open("toy")
            ok, shed = self._flood(
                host,
                port,
                n_threads=8,
                per_thread=4,
                cmd_args={"cmd": "open", "session": "seed", "dataset": "toy",
                          "name": "seed"},
            )
            assert ok + shed == 8 * 4
            assert ok >= 1
            # The cheap lane stayed live through the flood and reports a
            # consistent cluster view.
            with ServiceClient(host, port) as client:
                assert client.ping()["workers"] == 2
