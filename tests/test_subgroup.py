"""Tests for CN2-SD subgroup discovery."""

import numpy as np
import pytest

from repro.db import Table
from repro.errors import LearnError
from repro.learn import SubgroupDiscovery


@pytest.fixture
def planted():
    """Positives concentrated in (k='bad' AND x in the middle band)."""
    rng = np.random.default_rng(7)
    n = 800
    k = np.array(
        ["bad" if v < 0.3 else "ok" for v in rng.random(n)], dtype=object
    )
    x = rng.uniform(0, 100, n)
    labels = (k == "bad") & (x > 40) & (x < 60)
    # Add label noise outside the subgroup.
    labels = labels | (rng.random(n) < 0.02)
    table = Table.from_columns({"k": list(k), "x": x}, types={"k": "str", "x": "float"})
    return table, labels


class TestDiscovery:
    def test_finds_planted_subgroup(self, planted):
        table, labels = planted
        # The planted description needs 3 conditions: k='bad' plus both
        # bounds of the x band.
        rules = SubgroupDiscovery(n_rules=4, max_conditions=3).fit(table, labels)
        assert rules
        best = rules[0]
        described = best.describe()
        assert "bad" in described or "x" in described
        assert best.precision > 0.5

    def test_interval_on_one_numeric_column(self, planted):
        table, labels = planted
        rules = SubgroupDiscovery(n_rules=2, max_conditions=3).fit(
            table, labels, features=["x"]
        )
        assert rules
        # With only x available, the best description must be the band,
        # which requires both a lower and an upper bound on x.
        clause = rules[0].predicate.clauses[0]
        assert clause.lo is not None and clause.hi is not None

    def test_rules_have_positive_wracc(self, planted):
        table, labels = planted
        rules = SubgroupDiscovery(n_rules=4).fit(table, labels)
        for rule in rules:
            assert rule.quality > 0

    def test_weighted_covering_diversifies(self, planted):
        table, labels = planted
        rules = SubgroupDiscovery(n_rules=5, gamma=0.3, max_conditions=1).fit(
            table, labels
        )
        predicates = {rule.predicate for rule in rules}
        assert len(predicates) == len(rules)  # no duplicates
        assert len(rules) >= 2  # covering found more than one description

    def test_no_positives_returns_empty(self, planted):
        table, __ = planted
        rules = SubgroupDiscovery().fit(table, np.zeros(len(table), dtype=bool))
        assert rules == []

    def test_empty_table_returns_empty(self):
        table = Table.from_columns({"x": []}, types={"x": "float"})
        assert SubgroupDiscovery().fit(table, np.array([], dtype=bool)) == []

    def test_min_coverage_respected(self, planted):
        table, labels = planted
        rules = SubgroupDiscovery(min_coverage=50, n_rules=3).fit(table, labels)
        for rule in rules:
            assert rule.n_covered >= 50

    def test_max_conditions_respected(self, planted):
        table, labels = planted
        rules = SubgroupDiscovery(max_conditions=1, n_rules=3).fit(table, labels)
        for rule in rules:
            assert len(rule.predicate.clauses) == 1

    def test_feature_restriction(self, planted):
        table, labels = planted
        rules = SubgroupDiscovery(n_rules=3).fit(table, labels, features=["x"])
        for rule in rules:
            assert rule.predicate.columns() == {"x"}

    def test_labels_length_checked(self, planted):
        table, __ = planted
        with pytest.raises(LearnError):
            SubgroupDiscovery().fit(table, np.array([True]))

    def test_parameter_validation(self):
        with pytest.raises(LearnError):
            SubgroupDiscovery(gamma=1.5)
        with pytest.raises(LearnError):
            SubgroupDiscovery(beam_width=0)
        with pytest.raises(LearnError):
            SubgroupDiscovery(max_conditions=0)
        with pytest.raises(LearnError):
            SubgroupDiscovery(discretizer="nope")

    def test_frequency_discretizer_also_works(self, planted):
        table, labels = planted
        rules = SubgroupDiscovery(discretizer="frequency", n_rules=3).fit(
            table, labels
        )
        assert rules

    def test_rules_sql_renderable(self, planted):
        table, labels = planted
        for rule in SubgroupDiscovery(n_rules=3).fit(table, labels):
            assert rule.predicate.to_sql()
