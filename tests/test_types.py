"""Tests for repro.db.types: inference, coercion, NULL handling."""

import numpy as np
import pytest

from repro.db.types import (
    ColumnType,
    coerce_array,
    infer_type,
    is_null,
    python_value,
)
from repro.errors import TypeMismatchError


class TestInferType:
    def test_all_ints(self):
        assert infer_type([1, 2, 3]) is ColumnType.INT

    def test_ints_and_floats_promote_to_float(self):
        assert infer_type([1, 2.5]) is ColumnType.FLOAT

    def test_all_floats(self):
        assert infer_type([1.0, 2.0]) is ColumnType.FLOAT

    def test_strings(self):
        assert infer_type(["a", "b"]) is ColumnType.STR

    def test_bools(self):
        assert infer_type([True, False]) is ColumnType.BOOL

    def test_none_ignored_for_inference(self):
        assert infer_type([None, 1.5, None]) is ColumnType.FLOAT

    def test_all_none_is_str(self):
        assert infer_type([None, None]) is ColumnType.STR

    def test_mixed_str_and_number_rejected(self):
        with pytest.raises(TypeMismatchError):
            infer_type(["a", 1])

    def test_unsupported_value_rejected(self):
        with pytest.raises(TypeMismatchError):
            infer_type([object()])

    def test_numpy_scalars_accepted(self):
        assert infer_type([np.int64(3), np.int64(4)]) is ColumnType.INT
        assert infer_type([np.float64(3.5)]) is ColumnType.FLOAT
        assert infer_type([np.bool_(True)]) is ColumnType.BOOL


class TestCoerceArray:
    def test_float_column_stores_none_as_nan(self):
        out = coerce_array([1.0, None, 3.0], ColumnType.FLOAT)
        assert out.dtype == np.float64
        assert np.isnan(out[1])

    def test_int_column_rejects_none(self):
        with pytest.raises(TypeMismatchError):
            coerce_array([1, None], ColumnType.INT)

    def test_int_column_accepts_integral_floats(self):
        out = coerce_array([1, 2.0], ColumnType.INT)
        assert out.tolist() == [1, 2]

    def test_int_column_rejects_fractional_floats(self):
        with pytest.raises(TypeMismatchError):
            coerce_array([1.5], ColumnType.INT)

    def test_bool_column_rejects_ints(self):
        with pytest.raises(TypeMismatchError):
            coerce_array([1], ColumnType.BOOL)

    def test_numeric_columns_reject_bools(self):
        with pytest.raises(TypeMismatchError):
            coerce_array([True], ColumnType.INT)
        with pytest.raises(TypeMismatchError):
            coerce_array([True], ColumnType.FLOAT)

    def test_str_column_keeps_none(self):
        out = coerce_array(["x", None], ColumnType.STR)
        assert out[1] is None

    def test_str_column_rejects_numbers(self):
        with pytest.raises(TypeMismatchError):
            coerce_array([3], ColumnType.STR)

    def test_empty_input(self):
        out = coerce_array([], ColumnType.FLOAT)
        assert len(out) == 0


class TestNullsAndValues:
    def test_is_null_none(self):
        assert is_null(None)

    def test_is_null_nan(self):
        assert is_null(float("nan"))

    def test_is_null_regular_values(self):
        assert not is_null(0)
        assert not is_null("")
        assert not is_null(1.5)

    def test_python_value_unwraps_numpy(self):
        assert python_value(np.int64(3)) == 3
        assert isinstance(python_value(np.int64(3)), int)
        assert isinstance(python_value(np.float64(3.5)), float)
        assert isinstance(python_value(np.bool_(True)), bool)

    def test_python_value_passthrough(self):
        assert python_value("x") == "x"
        assert python_value(None) is None

    def test_numeric_type_flags(self):
        assert ColumnType.INT.is_numeric
        assert ColumnType.FLOAT.is_numeric
        assert not ColumnType.STR.is_numeric
        assert not ColumnType.BOOL.is_numeric
