"""Tests for CSV I/O, the debug report container, and rule utilities."""

import numpy as np
import pytest

from repro.core.report import DebugReport, RankedPredicate
from repro.db import ColumnType, Table, equals, read_csv, write_csv
from repro.errors import SchemaError
from repro.learn.rules import Rule, dedupe_rules


class TestCsvRoundTrip:
    def test_round_trip_preserves_values(self, tmp_path, sensors_table):
        path = tmp_path / "sensors.csv"
        write_csv(sensors_table, path)
        loaded = read_csv(path)
        assert loaded.schema.names == sensors_table.schema.names
        assert list(loaded.iter_rows()) == list(sensors_table.iter_rows())

    def test_type_inference_from_cells(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a,b,c\n1,1.5,x\n2,2.5,y\n")
        table = read_csv(path)
        assert table.schema.type_of("a") is ColumnType.INT
        assert table.schema.type_of("b") is ColumnType.FLOAT
        assert table.schema.type_of("c") is ColumnType.STR

    def test_empty_cells_become_null(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a,b\n1.5,x\n,\n")
        table = read_csv(path)
        assert np.isnan(table["a"][1])
        assert table["b"][1] is None

    def test_type_override(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a\n1\n2\n")
        table = read_csv(path, types={"a": "float"})
        assert table.schema.type_of("a") is ColumnType.FLOAT

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(SchemaError):
            read_csv(path)

    def test_ragged_row_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1\n")
        with pytest.raises(SchemaError):
            read_csv(path)

    def test_name_defaults_to_stem(self, tmp_path):
        path = tmp_path / "donations.csv"
        path.write_text("a\n1\n")
        assert read_csv(path).name == "donations"

    def test_null_round_trip(self, tmp_path):
        table = Table.from_columns(
            {"x": [1.0, None], "s": ["a", None]},
            types={"x": "float", "s": "str"},
        )
        path = tmp_path / "nulls.csv"
        write_csv(table, path)
        loaded = read_csv(path, types={"s": "str"})
        assert np.isnan(loaded["x"][1])
        assert loaded["s"][1] is None


def _ranked(describe_score):
    out = []
    for description, score in describe_score:
        out.append(
            RankedPredicate(
                predicate=equals("k", description),
                score=score,
                epsilon_before=10.0,
                epsilon_after=10.0 * (1 - score),
                accuracy=0.9,
                precision=0.9,
                recall=0.9,
                complexity=1,
                n_matched=5,
                candidate_origin="dprime",
                source="tree:gini",
            )
        )
    return DebugReport(
        predicates=tuple(out),
        epsilon=10.0,
        metric_description="test metric",
        selected_rows=(0,),
        n_inputs=100,
        n_dprime=5,
        n_candidates=2,
        timings={"preprocess": 0.01, "rank": 0.02},
    )


class TestDebugReport:
    def test_indexing_iteration(self):
        report = _ranked([("a", 0.9), ("b", 0.5)])
        assert len(report) == 2
        assert report[0].score == 0.9
        assert [r.score for r in report] == [0.9, 0.5]

    def test_best_and_top(self):
        report = _ranked([("a", 0.9), ("b", 0.5), ("c", 0.1)])
        assert report.best.score == 0.9
        assert len(report.top(2)) == 2

    def test_empty_report(self):
        report = _ranked([])
        assert report.best is None
        assert "(no predicates found)" in report.to_text()

    def test_error_reduction_properties(self):
        report = _ranked([("a", 0.8)])
        entry = report[0]
        assert entry.error_reduction == pytest.approx(8.0)
        assert entry.relative_error_reduction == pytest.approx(0.8)

    def test_total_time(self):
        report = _ranked([("a", 0.8)])
        assert report.total_time() == pytest.approx(0.03)

    def test_to_text_truncation(self):
        report = _ranked([(f"p{i}", 1.0 - i * 0.01) for i in range(15)])
        text = report.to_text(max_rows=5)
        assert "more" in text


class TestRuleUtilities:
    def test_dedupe_keeps_best_quality(self):
        p = equals("k", "a")
        rules = [
            Rule(predicate=p, quality=0.2, source="x"),
            Rule(predicate=p, quality=0.9, source="y"),
            Rule(predicate=equals("k", "b"), quality=0.5, source="z"),
        ]
        deduped = dedupe_rules(rules)
        assert len(deduped) == 2
        assert deduped[0].quality == 0.9

    def test_rule_precision(self):
        rule = Rule(predicate=equals("k", "a"), n_covered=10, n_pos_covered=7)
        assert rule.precision == pytest.approx(0.7)

    def test_rule_precision_zero_coverage(self):
        rule = Rule(predicate=equals("k", "a"))
        assert rule.precision == 0.0

    def test_rule_str(self):
        rule = Rule(predicate=equals("k", "a"), n_covered=3, n_pos_covered=3,
                    quality=0.5)
        text = str(rule)
        assert "k = 'a'" in text and "cov=3" in text
