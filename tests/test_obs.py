"""The telemetry subsystem: metrics, tracing, logs, and cluster exposition.

Unit coverage for the :mod:`repro.obs` primitives (counter / gauge /
histogram semantics, registry get-or-create, merge rules, Prometheus
rendering, span trees, the slow-request log), plus the acceptance path:
one ``debug()`` through a 2-worker partitioned server must produce one
trace — server → router → worker → pipeline stages → per-partition
block spans, all under a single trace id — and ``metrics`` must return
a cluster-merged snapshot covering every documented metric name.
"""

from __future__ import annotations

import pytest

from repro.cli import BOOTSTRAP_QUERIES
from repro.core import PipelineConfig
from repro.errors import ObservabilityError
from repro.obs import (
    CORE_METRICS,
    MetricsRegistry,
    Tracer,
    merge_snapshots,
    registry,
    render_prometheus,
    render_tree,
    set_enabled,
    set_slow_threshold,
    slow_threshold,
)
from repro.obs.logs import logger, maybe_log_slow
from repro.obs.metrics import Counter, Gauge, Histogram
from repro.obs.trace import from_wire, span_tree, wire_context
from repro.service import DBWipesServer, ServiceClient


class TestPrimitives:
    def test_counter_only_goes_up(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ObservabilityError):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = Gauge()
        gauge.set(10)
        gauge.inc(2)
        gauge.dec(5)
        assert gauge.value == 7.0

    def test_histogram_cumulative_dump(self):
        hist = Histogram(bounds=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            hist.observe(value)
        dump = hist.dump()
        # Cumulative per Prometheus: each bucket counts everything <= bound.
        assert dump["buckets"] == [1, 3, 4]
        assert dump["count"] == 5  # the +Inf bucket is the total
        assert dump["sum"] == pytest.approx(56.05)

    def test_histogram_rejects_bad_bounds(self):
        with pytest.raises(ObservabilityError):
            Histogram(bounds=())
        with pytest.raises(ObservabilityError):
            Histogram(bounds=(1.0, 0.5))
        with pytest.raises(ObservabilityError):
            Histogram(bounds=(1.0, 1.0))


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        a = reg.counter("requests_total", labels={"cmd": "debug"})
        b = reg.counter("requests_total", labels={"cmd": "debug"})
        assert a is b
        # A different label set is a different time series.
        c = reg.counter("requests_total", labels={"cmd": "ping"})
        assert c is not a

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("dual_use")
        with pytest.raises(ObservabilityError):
            reg.gauge("dual_use")
        with pytest.raises(ObservabilityError):
            reg.histogram("dual_use")

    def test_bad_names_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ObservabilityError):
            reg.counter("")
        with pytest.raises(ObservabilityError):
            reg.counter("has space")

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("hits_total", help="Cache hits.").inc(3)
        reg.histogram("seconds", bounds=(1.0,)).observe(0.5)
        snap = reg.snapshot()
        by_name = {m["name"]: m for m in snap["metrics"]}
        assert by_name["hits_total"]["value"] == 3.0
        assert by_name["seconds"]["buckets"] == [1]
        assert snap["help"]["hits_total"] == "Cache hits."


class TestClusterMerge:
    def _worker_snapshot(self, hits: int, lookups: int) -> dict:
        reg = MetricsRegistry()
        reg.counter("cache_hits_total").inc(hits)
        reg.counter("cache_lookups_total").inc(lookups)
        reg.histogram("req_seconds", bounds=(0.1, 1.0)).observe(0.05)
        return reg.snapshot()

    def test_counters_sum_and_rates_recompute(self):
        # Skewed shards: 90/100 and 1/10. The correct cluster hit rate
        # is 91/110 ≈ 0.827 — averaging per-worker rates (0.9, 0.1)
        # would claim 0.5. Merge must expose the sums, not the ratios.
        merged = merge_snapshots(
            [self._worker_snapshot(90, 100), self._worker_snapshot(1, 10)]
        )
        values = {m["name"]: m.get("value") for m in merged["metrics"]}
        assert values["cache_hits_total"] == 91.0
        assert values["cache_lookups_total"] == 110.0
        assert 91.0 / 110.0 != pytest.approx((0.9 + 0.1) / 2)

    def test_histograms_merge_bucket_wise(self):
        merged = merge_snapshots(
            [self._worker_snapshot(1, 1), self._worker_snapshot(1, 1)]
        )
        hist = next(m for m in merged["metrics"] if m["name"] == "req_seconds")
        assert hist["buckets"] == [2, 2]
        assert hist["count"] == 2

    def test_mismatched_bounds_raise(self):
        a = MetricsRegistry()
        a.histogram("seconds", bounds=(0.1, 1.0)).observe(0.5)
        b = MetricsRegistry()
        b.histogram("seconds", bounds=(0.2, 2.0)).observe(0.5)
        with pytest.raises(ObservabilityError):
            merge_snapshots([a.snapshot(), b.snapshot()])

    def test_conflicting_kinds_raise(self):
        a = MetricsRegistry()
        a.counter("thing")
        b = MetricsRegistry()
        b.gauge("thing")
        with pytest.raises(ObservabilityError):
            merge_snapshots([a.snapshot(), b.snapshot()])


class TestRenderPrometheus:
    def test_text_format(self):
        reg = MetricsRegistry()
        reg.counter("hits_total", labels={"cache": "pp"}, help="Hits.").inc(7)
        reg.histogram("seconds", bounds=(0.5, 1.0)).observe(0.2)
        text = render_prometheus(reg.snapshot())
        assert "# HELP hits_total Hits." in text
        assert "# TYPE hits_total counter" in text
        assert 'hits_total{cache="pp"} 7' in text
        assert 'seconds_bucket{le="0.5"} 1' in text
        assert 'seconds_bucket{le="+Inf"} 1' in text
        assert "seconds_sum 0.2" in text
        assert "seconds_count 1" in text

    def test_empty_snapshot_renders_empty(self):
        assert render_prometheus({"metrics": [], "help": {}}) == ""


class TestTracer:
    def test_nested_spans_share_one_trace(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
        spans = tracer.spans(outer.trace_id)
        assert [s["name"] for s in spans] == ["outer", "inner"]
        roots = span_tree(spans)
        assert len(roots) == 1
        assert roots[0]["name"] == "outer"
        assert roots[0]["children"][0]["name"] == "inner"

    def test_wire_context_grafts_across_processes(self):
        # Two Tracer instances stand in for two processes: the wire
        # context carries (trace id, parent span id) across the hop, and
        # the merged flat span list still nests into one tree.
        front, worker = Tracer(), Tracer()
        with front.span("server.debug") as root:
            context = wire_context(root)
            trace_id, parent_id = from_wire({"trace": context})
            with worker.span("worker.debug", trace_id=trace_id,
                             parent_id=parent_id):
                pass
        merged = front.spans(root.trace_id) + worker.spans(root.trace_id)
        assert {s["trace_id"] for s in merged} == {root.trace_id}
        roots = span_tree(merged)
        assert len(roots) == 1
        assert roots[0]["children"][0]["name"] == "worker.debug"
        assert "worker.debug" in render_tree(roots)

    def test_disabled_spans_record_nothing(self):
        tracer = Tracer()
        set_enabled(False)
        try:
            with tracer.span("ghost") as span:
                assert span.trace_id is None
                span.set(ignored=True)  # same surface, no recording
        finally:
            set_enabled(True)
        assert tracer.trace_ids() == []

    def test_exception_marks_span_and_reraises(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom") as span:
                raise ValueError("nope")
        recorded = tracer.spans(span.trace_id)
        assert recorded[0]["attrs"]["error"] == "ValueError"

    def test_ring_buffer_bounds(self):
        tracer = Tracer(max_traces=2, max_spans_per_trace=3)
        ids = []
        for __ in range(3):
            with tracer.span("root") as span:
                ids.append(span.trace_id)
        assert tracer.trace_ids() == ids[1:]  # oldest trace evicted
        with tracer.span("wide") as span:
            for __ in range(5):
                with tracer.span("child"):
                    pass
        assert len(tracer.spans(span.trace_id)) == 3
        assert tracer.dropped(span.trace_id) == 3  # 2 children + the root


class TestSlowRequestLog:
    def test_threshold_gates_logging(self):
        original = slow_threshold()
        logger().clear()
        try:
            set_slow_threshold(0.5)
            assert not maybe_log_slow("debug", 0.2)
            assert maybe_log_slow("debug", 0.7, session="alice")
        finally:
            set_slow_threshold(original)
        records = logger().recent("slow_request")
        assert len(records) == 1
        assert records[0]["cmd"] == "debug"
        assert records[0]["session"] == "alice"
        assert records[0]["threshold"] == 0.5

    def test_slow_request_counts_in_registry(self):
        counter = registry().counter(
            "dbwipes_slow_requests_total", labels={"cmd": "zoom"}
        )
        before = counter.value
        original = slow_threshold()
        try:
            set_slow_threshold(0.0)
            maybe_log_slow("zoom", 0.001)
        finally:
            set_slow_threshold(original)
        assert counter.value == before + 1


@pytest.fixture(scope="module")
def cluster_debug():
    """One debug cycle through a 2-worker partitioned server.

    Yields the trace, the cluster-merged metrics, and the session
    snapshot so the acceptance assertions below share one (relatively
    expensive) server boot.
    """
    server = DBWipesServer(
        port=0,
        workers=2,
        config=PipelineConfig(backend="partitioned", n_partitions=4),
    )
    host, port = server.start()
    try:
        with ServiceClient(host, port, session="obs") as client:
            client.open("intel")
            client.execute(BOOTSTRAP_QUERIES["intel"])
            client.select_results(brush={"above": 2.0}, y="std_temp")
            client.set_metric("too_high")
            client.debug()
            debug_trace = client.last_trace
            yield {
                "debug_trace": debug_trace,
                "trace": client.trace(debug_trace),
                "metrics": client.metrics(),
                "snapshot": client.snapshot(),
            }
    finally:
        server.stop()


class TestClusterAcceptance:
    """The ISSUE's acceptance path, end to end."""

    def test_one_debug_is_one_trace(self, cluster_debug):
        trace = cluster_debug["trace"]
        assert trace["trace_id"] == cluster_debug["debug_trace"]
        spans = trace["spans"]
        # Every span — front-end and worker-process alike — carries the
        # single trace id the client saw on its response envelope.
        assert {s["trace_id"] for s in spans} == {trace["trace_id"]}
        names = [s["name"] for s in spans]
        for needed in (
            "server.debug",
            "router.debug",
            "worker.debug",
            "pipeline.debug",
            "stage.preprocess",
            "stage.enumerate_datasets",
            "stage.enumerate_predicates",
            "stage.rank",
            "partition.block",
        ):
            assert needed in names, f"missing span {needed!r}"
        # One root (the front-end accept span), stages under the worker.
        tree = trace["tree"]
        assert len(tree) == 1
        assert tree[0]["name"] == "server.debug"
        block_spans = [s for s in spans if s["name"] == "partition.block"]
        assert len(block_spans) == 4
        assert {s["attrs"]["index"] for s in block_spans} == {0, 1, 2, 3}

    def test_merged_metrics_cover_core_names(self, cluster_debug):
        merged = cluster_debug["metrics"]["merged"]
        names = {m["name"] for m in merged["metrics"]}
        missing = [name for name in CORE_METRICS if name not in names]
        assert not missing, f"unregistered core metrics: {missing}"

    def test_merged_counters_carry_the_work(self, cluster_debug):
        merged = cluster_debug["metrics"]["merged"]
        totals: dict[str, float] = {}
        for metric in merged["metrics"]:
            if metric["kind"] == "counter":
                totals[metric["name"]] = (
                    totals.get(metric["name"], 0.0) + metric["value"]
                )
        assert totals["dbwipes_preprocess_cache_misses_total"] >= 1
        assert totals["dbwipes_debugs_total"] >= 1
        assert totals["dbwipes_partition_blocks_total"] >= 4
        # Requests counted at both roles, kept distinguishable by label.
        roles = {
            dict(m["labels"]).get("role")
            for m in merged["metrics"]
            if m["name"] == "dbwipes_requests_total"
        }
        assert {"server", "worker"} <= roles

    def test_stage_histograms_merge_and_render(self, cluster_debug):
        merged = cluster_debug["metrics"]["merged"]
        stages = {
            dict(m["labels"]).get("stage")
            for m in merged["metrics"]
            if m["name"] == "dbwipes_stage_seconds"
        }
        assert {
            "preprocess",
            "enumerate_datasets",
            "enumerate_predicates",
            "rank",
        } <= stages
        text = render_prometheus(merged)
        assert 'dbwipes_stage_seconds_bucket{stage="rank",le="+Inf"}' in text

    def test_partition_timings_in_snapshot(self, cluster_debug):
        timings = cluster_debug["snapshot"]["timings"]
        partition = timings["partition"]
        assert partition["blocks_timed"] >= 4
        assert partition["block_seconds_total"] > 0
        assert partition["block_seconds_max"] >= partition["block_seconds_mean"]

    def test_registry_smoke_duplicate_kind_fails(self):
        # The CI registry smoke check: every core name must keep its
        # kind — re-registering any of them differently must fail loud.
        reg = registry()
        reg.gauge("dbwipes_sessions_open")  # real kind, get-or-create
        with pytest.raises(ObservabilityError):
            reg.histogram("dbwipes_sessions_open")


class TestSessionMetricsGating:
    """All four SessionManager registry mirrors obey the obs flag
    *together* — disabling observability must freeze the open gauge, the
    request counter, and both eviction counters as one unit (regression:
    the gauge and request counter used to keep moving while the eviction
    counters were gated)."""

    def _manager(self, clock):
        from repro.db import Database
        from repro.service import DatasetCatalog, SessionManager

        def build():
            db = Database()
            db.create_table(
                "t",
                {"g": [0, 0, 1, 1], "v": [1.0, 2.0, 3.0, 4.0]},
                types={"g": "int", "v": "float"},
            )
            return db

        catalog = DatasetCatalog()
        catalog.register("tiny", build)
        return SessionManager(
            catalog=catalog, max_sessions=1, ttl_seconds=10.0, clock=clock
        )

    @staticmethod
    def _mirror_values():
        reg = registry()
        return (
            reg.gauge("dbwipes_sessions_open").value,
            reg.counter("dbwipes_session_requests_total").value,
            reg.counter("dbwipes_session_lru_evictions_total").value,
            reg.counter("dbwipes_session_ttl_evictions_total").value,
        )

    def _exercise_all_paths(self, manager, clock):
        """Drive open, borrow, LRU eviction, and TTL expiry once each."""
        manager.open("a", "tiny")
        with manager.borrow("a"):
            pass
        manager.open("b", "tiny")  # max_sessions=1: LRU-evicts "a"
        clock.advance(100.0)
        assert manager.evict_expired() == 1  # TTL-reaps "b"

    def test_disabled_freezes_every_mirror(self):
        class Clock:
            now = 0.0

            def __call__(self):
                return self.now

            def advance(self, s):
                self.now += s

        clock = Clock()
        manager = self._manager(clock)
        before = self._mirror_values()
        set_enabled(False)
        try:
            self._exercise_all_paths(manager, clock)
            assert self._mirror_values() == before
        finally:
            set_enabled(True)
        # The ad-hoc stats counters are unconditional either way.
        stats = manager.stats()
        assert stats["lru_evictions"] == 1
        assert stats["ttl_evictions"] == 1
        # Re-enabled: every mirror moves again, in step.
        self._exercise_all_paths(manager, clock)
        after = self._mirror_values()
        assert after[0] == before[0]  # open +2, evicted -2 → net zero
        assert after[1] == before[1] + 1
        assert after[2] == before[2] + 1
        assert after[3] == before[3] + 1
