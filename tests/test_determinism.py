"""End-to-end determinism of the debug cycle on the histogram tree path.

The fast split path must not introduce any run-to-run variance: the full
FEC debug cycle, repeated from fresh state (fresh tables, fresh
pipeline caches, and — for hash-randomization coverage — a fresh
interpreter), must produce byte-identical ranked predicates, scores,
and rule descriptions. A service-mode run must match single-session
mode while sharing one :class:`SplitIndex` through the preprocess
cache.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

from repro.core import PipelineConfig
from repro.data import FECConfig, generate_fec, walkthrough_query
from repro.db import Database
from repro.frontend import Brush, DBWipesSession
from repro.service import DBWipesServer, DatasetCatalog, ServiceClient, SessionManager

SRC = str(Path(__file__).resolve().parent.parent / "src")

FEC_CONFIG = FECConfig(
    n_days=150,
    base_rate=10,
    events=((40, 3.0), (90, 4.0)),
    anomaly_day=100,
)


def _fec_db() -> Database:
    table, __ = generate_fec(FEC_CONFIG)
    db = Database()
    db.register(table)
    return db


def _debug_lines(db: Database, config: PipelineConfig | None = None) -> list[str]:
    """One scripted §3.2 FEC debug cycle, rendered to stable text lines."""
    session = DBWipesSession(db, config)
    session.execute(walkthrough_query("MCCAIN"))
    session.select_results(Brush.below(0.0))
    session.zoom()
    session.select_inputs(Brush.below(0.0))
    session.set_metric("too_low", threshold=0.0)
    report = session.debug()
    return [
        "|".join(
            (
                ranked.predicate.describe(),
                ranked.predicate.to_sql(),
                repr(ranked.score),
                repr(ranked.epsilon_before),
                repr(ranked.epsilon_after),
                ranked.candidate_origin,
                ranked.source,
                ranked.describe(),
            )
        )
        for ranked in report
    ]


class TestDebugCycleDeterminism:
    def test_two_fresh_runs_are_byte_identical(self):
        first = _debug_lines(_fec_db())
        second = _debug_lines(_fec_db())
        assert first  # the cycle must actually rank something
        assert first == second

    def test_repeat_debug_within_one_session_is_byte_identical(self):
        db = _fec_db()
        session = DBWipesSession(db)
        session.execute(walkthrough_query("MCCAIN"))
        session.select_results(Brush.below(0.0))
        session.zoom()
        session.select_inputs(Brush.below(0.0))
        session.set_metric("too_low", threshold=0.0)
        first = [ranked.describe() for ranked in session.debug()]
        second = [ranked.describe() for ranked in session.debug()]
        assert first == second

    def test_fresh_interpreters_are_byte_identical(self):
        """Two subprocesses (independent hash randomization) agree."""
        script = (
            "import sys; sys.path.insert(0, {src!r})\n"
            "from repro.data import FECConfig, generate_fec, walkthrough_query\n"
            "from repro.db import Database\n"
            "from repro.frontend import Brush, DBWipesSession\n"
            "table, _ = generate_fec(FECConfig(n_days=150, base_rate=10, "
            "events=((40, 3.0), (90, 4.0)), anomaly_day=100))\n"
            "db = Database(); db.register(table)\n"
            "session = DBWipesSession(db)\n"
            "session.execute(walkthrough_query('MCCAIN'))\n"
            "session.select_results(Brush.below(0.0))\n"
            "session.zoom()\n"
            "session.select_inputs(Brush.below(0.0))\n"
            "session.set_metric('too_low', threshold=0.0)\n"
            "for r in session.debug():\n"
            "    print(r.predicate.to_sql(), repr(r.score), r.describe(), r.source)\n"
        ).format(src=SRC)
        outputs = []
        for __ in range(2):
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                timeout=300,
                cwd=str(Path(__file__).resolve().parent.parent),
            )
            assert proc.returncode == 0, proc.stderr
            outputs.append(proc.stdout)
        assert outputs[0] == outputs[1]
        assert outputs[0].strip()


class TestBatchedScoringParity:
    """The batched Ranker/Merger path must be byte-identical to the
    per-rule reference on the full debug cycle — scores, Δε previews,
    descriptions, order, everything that reaches the user."""

    def test_batch_and_per_rule_reference_are_byte_identical(self):
        db = _fec_db()
        batch = _debug_lines(db, PipelineConfig(score_algorithm="batch"))
        reference = _debug_lines(db, PipelineConfig(score_algorithm="per_rule"))
        assert batch  # the cycle must actually rank something
        assert batch == reference

    def test_parity_holds_with_merging_enabled(self):
        db = _fec_db()
        batch = _debug_lines(
            db,
            PipelineConfig(score_algorithm="batch", merge_predicates=True),
        )
        reference = _debug_lines(
            db,
            PipelineConfig(score_algorithm="per_rule", merge_predicates=True),
        )
        assert batch
        assert batch == reference


class TestServiceModeParity:
    def test_service_answers_match_single_session_and_share_split_index(self):
        db = _fec_db()
        catalog = DatasetCatalog()
        catalog.register("fec", db, bootstrap=walkthrough_query("MCCAIN"))
        manager = SessionManager(catalog=catalog)

        expected = _debug_lines(db)

        def one_client(name: str) -> list[str]:
            with ServiceClient(host, port, session=name, timeout=300) as client:
                client.open("fec")
                client.execute(client.bootstrap, max_rows=0)
                client.select_results(brush={"below": 0.0})
                client.zoom(max_points=0)
                client.select_inputs(brush={"below": 0.0})
                client.set_metric("too_low", threshold=0.0)
                report = client.debug()
                return [entry["predicate"] for entry in report["predicates"]]

        with DBWipesServer(manager, port=0) as server:
            host, port = server.address
            answers = [one_client(f"det-{i}") for i in range(2)]

        described = [line.split("|", 1)[0] for line in expected]
        assert answers[0] == described
        assert answers[1] == described

        # The shared PreprocessResult carries exactly one SplitIndex memo,
        # shared by both sessions (the cache saw one miss, then hits).
        stats = manager.preprocess_cache.stats()
        assert stats["misses"] == 1
        assert stats["hits"] >= 1
        entries = list(manager.preprocess_cache._entries.values())
        assert len(entries) == 1
        memo_keys = [
            key for key in entries[0].value._column_memo if key[0] == "split_index"
        ]
        assert len(memo_keys) == 1
