"""Tests for repro.db.predicate: clauses, masks, simplification, SQL."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import (
    CategoricalClause,
    Database,
    NumericClause,
    Predicate,
    Table,
    equals,
    in_set,
    interval,
)
from repro.errors import SchemaError


@pytest.fixture
def table():
    return Table.from_columns(
        {
            "x": [1.0, 2.0, 3.0, 4.0, float("nan")],
            "k": ["a", "b", "a", None, "c"],
        },
        types={"x": "float", "k": "str"},
    )


class TestNumericClause:
    def test_requires_a_bound(self):
        with pytest.raises(SchemaError):
            NumericClause("x")

    def test_rejects_empty_interval(self):
        with pytest.raises(SchemaError):
            NumericClause("x", 5.0, 1.0)

    def test_mask_half_open_default(self, table):
        clause = NumericClause("x", 2.0, 4.0)  # [2, 4)
        assert clause.mask(table).tolist() == [False, True, True, False, False]

    def test_mask_inclusive_both(self, table):
        clause = NumericClause("x", 2.0, 4.0, True, True)
        assert clause.mask(table).tolist() == [False, True, True, True, False]

    def test_mask_exclusive_lo(self, table):
        clause = NumericClause("x", 2.0, None, lo_inclusive=False)
        assert clause.mask(table).tolist() == [False, False, True, True, False]

    def test_nan_never_matches(self, table):
        clause = NumericClause("x", None, 100.0, hi_inclusive=True)
        assert not clause.mask(table)[4]

    def test_describe(self):
        assert NumericClause("x", 1.0, 2.0).describe() == "1 <= x < 2"
        assert NumericClause("x", None, 2.5, hi_inclusive=True).describe() == "x <= 2.5"

    def test_intersect_narrows(self):
        a = NumericClause("x", 0.0, 10.0)
        b = NumericClause("x", 5.0, 20.0)
        merged = a.intersect(b)
        assert merged.lo == 5.0 and merged.hi == 10.0

    def test_intersect_empty_returns_none(self):
        a = NumericClause("x", 0.0, 1.0)
        b = NumericClause("x", 2.0, 3.0)
        assert a.intersect(b) is None

    def test_intersect_point_boundary(self):
        a = NumericClause("x", None, 2.0, hi_inclusive=True)
        b = NumericClause("x", 2.0, None, lo_inclusive=True)
        merged = a.intersect(b)
        assert merged is not None
        assert merged.lo == merged.hi == 2.0

    def test_intersect_open_boundary_is_empty(self):
        a = NumericClause("x", None, 2.0, hi_inclusive=False)
        b = NumericClause("x", 2.0, None, lo_inclusive=True)
        assert a.intersect(b) is None

    def test_intersect_cross_column_rejected(self):
        with pytest.raises(SchemaError):
            NumericClause("x", 0.0, 1.0).intersect(NumericClause("y", 0.0, 1.0))


class TestCategoricalClause:
    def test_requires_values(self):
        with pytest.raises(SchemaError):
            CategoricalClause("k", frozenset())

    def test_mask(self, table):
        clause = CategoricalClause("k", frozenset(["a"]))
        assert clause.mask(table).tolist() == [True, False, True, False, False]

    def test_negated_mask_includes_none(self, table):
        clause = CategoricalClause("k", frozenset(["a"]), negated=True)
        assert clause.mask(table).tolist() == [False, True, False, True, True]

    def test_intersect_positive_positive(self):
        a = CategoricalClause("k", frozenset(["a", "b"]))
        b = CategoricalClause("k", frozenset(["b", "c"]))
        assert a.intersect(b).values == frozenset(["b"])

    def test_intersect_disjoint_returns_none(self):
        a = CategoricalClause("k", frozenset(["a"]))
        b = CategoricalClause("k", frozenset(["b"]))
        assert a.intersect(b) is None

    def test_intersect_positive_negative(self):
        a = CategoricalClause("k", frozenset(["a", "b"]))
        b = CategoricalClause("k", frozenset(["b"]), negated=True)
        assert a.intersect(b).values == frozenset(["a"])

    def test_intersect_negative_negative_unions(self):
        a = CategoricalClause("k", frozenset(["a"]), negated=True)
        b = CategoricalClause("k", frozenset(["b"]), negated=True)
        merged = a.intersect(b)
        assert merged.negated and merged.values == frozenset(["a", "b"])

    def test_describe_single_and_set(self):
        assert CategoricalClause("k", frozenset(["a"])).describe() == "k = 'a'"
        multi = CategoricalClause("k", frozenset(["a", "b"])).describe()
        assert multi.startswith("k in ")


class TestPredicate:
    def test_true_predicate(self, table):
        assert Predicate.true().is_true
        assert Predicate.true().mask(table).all()
        assert Predicate.true().describe() == "TRUE"

    def test_conjunction_mask(self, table):
        # x >= 2 matches rows 1,2,3; k in {a,b} matches rows 0,1,2.
        predicate = Predicate(
            [
                NumericClause("x", 2.0, None),
                CategoricalClause("k", frozenset(["a", "b"])),
            ]
        )
        assert predicate.mask(table).tolist() == [False, True, True, False, False]

    def test_matching_tids(self, table):
        predicate = equals("k", "a")
        assert predicate.matching_tids(table).tolist() == [0, 2]

    def test_complexity_counts_bounds_and_values(self):
        predicate = Predicate(
            [
                NumericClause("x", 1.0, 2.0),
                CategoricalClause("k", frozenset(["a", "b", "c"])),
            ]
        )
        assert predicate.complexity == 5

    def test_simplify_merges_same_column(self):
        predicate = Predicate(
            [NumericClause("x", 0.0, 10.0), NumericClause("x", 5.0, None)]
        )
        simplified = predicate.simplify()
        assert len(simplified.clauses) == 1
        assert simplified.clauses[0].lo == 5.0

    def test_simplify_unsat_returns_none(self):
        predicate = Predicate(
            [
                CategoricalClause("k", frozenset(["a"])),
                CategoricalClause("k", frozenset(["b"])),
            ]
        )
        assert predicate.simplify() is None

    def test_equality_order_insensitive(self):
        p1 = Predicate([NumericClause("x", 0.0, 1.0), equals("k", "a").clauses[0]])
        p2 = Predicate([equals("k", "a").clauses[0], NumericClause("x", 0.0, 1.0)])
        assert p1 == p2
        assert hash(p1) == hash(p2)

    def test_convenience_builders(self, table):
        assert equals("x", 2.0).mask(table).tolist() == [
            False, True, False, False, False,
        ]
        assert in_set("k", ["a", "c"]).mask(table).sum() == 3
        assert interval("x", 3.0).mask(table).tolist() == [
            False, False, True, True, False,
        ]


class TestSqlRoundTrip:
    """Predicates rendered to SQL and re-executed must select the same rows."""

    def _roundtrip(self, predicate, table):
        db = Database()
        db.register(table, "t")
        sql = f"SELECT x, k FROM t WHERE {predicate.to_sql()}"
        result = db.sql(sql)
        expected = predicate.mask(table)
        assert result.num_rows == int(expected.sum())

    def test_numeric_roundtrip(self, table):
        self._roundtrip(interval("x", 1.5, 3.5), table)

    def test_categorical_roundtrip(self, table):
        self._roundtrip(in_set("k", ["a", "b"]), table)

    def test_negated_roundtrip(self, table):
        predicate = Predicate(
            [CategoricalClause("k", frozenset(["a"]), negated=True)]
        )
        self._roundtrip(predicate, table)

    def test_negated_expr_complement(self, table):
        predicate = interval("x", 2.0, 3.5)
        mask = predicate.mask(table)
        negated = predicate.negated_expr().eval(table)
        assert (mask ^ negated).all()

    @settings(max_examples=30, deadline=None)
    @given(
        lo=st.floats(min_value=-50, max_value=50, allow_nan=False),
        width=st.floats(min_value=0.1, max_value=40, allow_nan=False),
        lo_inc=st.booleans(),
        hi_inc=st.booleans(),
    )
    def test_interval_mask_matches_sql_property(self, lo, width, lo_inc, hi_inc):
        rng = np.random.default_rng(0)
        table = Table.from_columns(
            {"x": rng.uniform(-60, 60, 100)}, types={"x": "float"}
        )
        predicate = Predicate(
            [NumericClause("x", lo, lo + width, lo_inc, hi_inc)]
        )
        db = Database()
        db.register(table, "t")
        result = db.sql(f"SELECT x FROM t WHERE {predicate.to_sql()}")
        assert result.num_rows == int(predicate.mask(table).sum())
