"""Tests for scatter data, brushes, rendering, forms, and the rewriter."""

import numpy as np
import pytest

from repro.core import TooHigh
from repro.db import Predicate, Table, equals, parse_select
from repro.db.predicate import CategoricalClause
from repro.errors import SessionError
from repro.frontend import (
    Brush,
    QueryRewriter,
    ascii_scatter,
    forms_for,
    from_result,
    from_tuples,
    pca_projection,
    union_select,
)


@pytest.fixture
def result(sensors_db):
    return sensors_db.sql(
        "SELECT time / 30 AS w, avg(temp) AS m FROM sensors GROUP BY time / 30 "
        "ORDER BY w"
    )


class TestScatterData:
    def test_from_result_defaults(self, result):
        scatter = from_result(result)
        assert scatter.x_label == "w"
        assert scatter.y_label == "m"
        assert scatter.kind == "results"
        assert len(scatter) == 3

    def test_keys_are_row_indexes(self, result):
        scatter = from_result(result)
        assert scatter.keys.tolist() == [0, 1, 2]

    def test_categorical_axis_coded(self, sensors_db):
        result = sensors_db.sql(
            "SELECT room, count(*) FROM sensors GROUP BY room ORDER BY room"
        )
        scatter = from_result(result)
        assert scatter.x_categories == ("a", "b")
        assert scatter.x.tolist() == [0.0, 1.0]

    def test_explicit_axes(self, sensors_db):
        result = sensors_db.sql(
            "SELECT room, sensorid, count(*) FROM sensors GROUP BY room, sensorid"
        )
        scatter = from_result(result, x="room", y="sensorid")
        assert scatter.y_label == "sensorid"

    def test_missing_defaults_raise(self, sensors_db):
        projection = sensors_db.sql("SELECT temp FROM sensors")
        with pytest.raises(SessionError):
            from_result(projection)

    def test_from_tuples_keys_are_tids(self, sensors_table):
        scatter = from_tuples(sensors_table, "time", "temp")
        assert scatter.kind == "tuples"
        assert scatter.keys.tolist() == list(range(7))

    def test_bounds(self, result):
        xmin, xmax, ymin, ymax = from_result(result).bounds()
        assert xmin == 0 and xmax == 2

    def test_pca_projection(self, sensors_db):
        result = sensors_db.sql(
            "SELECT room, sensorid, count(*) FROM sensors GROUP BY room, sensorid"
        )
        scatter = pca_projection(result, ["room", "sensorid"])
        assert scatter.x_label == "pc1"
        assert len(scatter) == result.num_rows

    def test_pca_needs_two_columns(self, result):
        with pytest.raises(SessionError):
            pca_projection(result, ["w"])


class TestBrush:
    def test_rectangle_selects_inside(self, result):
        scatter = from_result(result)
        brush = Brush(0.5, 1.5, 0, 200)
        assert brush.select(scatter).tolist() == [1]

    def test_above_below(self, result):
        scatter = from_result(result)
        assert Brush.above(50).select(scatter).tolist() == [1]
        assert set(Brush.below(50).select(scatter).tolist()) == {0, 2}

    def test_over_x(self, result):
        scatter = from_result(result)
        assert Brush.over_x(1, 2).select(scatter).tolist() == [1, 2]

    def test_union_select(self, result):
        scatter = from_result(result)
        keys = union_select([Brush.over_x(0, 0), Brush.over_x(2, 2)], scatter)
        assert set(keys.tolist()) == {0, 2}

    def test_union_empty(self, result):
        assert union_select([], from_result(result)).tolist() == []

    def test_degenerate_brush_rejected(self):
        with pytest.raises(SessionError):
            Brush(1, 0, 0, 1)

    def test_nan_points_never_selected(self):
        table = Table.from_columns(
            {"x": [1.0, float("nan")], "y": [1.0, 1.0]},
        )
        scatter = from_tuples(table, "x", "y")
        brush = Brush(-10, 10, -10, 10)
        assert brush.select(scatter).tolist() == [0]


class TestAsciiRender:
    def test_contains_axes_and_points(self, result):
        text = ascii_scatter(from_result(result))
        assert "·" in text or "o" in text
        assert "x: w" in text and "y: m" in text

    def test_highlight_marker(self, result):
        text = ascii_scatter(from_result(result), highlight_keys=[1])
        assert "#" in text

    def test_empty_scatter(self):
        table = Table.from_columns({"x": [], "y": []},
                                   types={"x": "float", "y": "float"})
        text = ascii_scatter(from_tuples(table, "x", "y"))
        assert "(no data)" in text

    def test_title(self, result):
        text = ascii_scatter(from_result(result), title="Figure 7")
        assert text.startswith("Figure 7")


class TestErrorForms:
    def test_avg_forms(self):
        options = forms_for("avg")
        ids = [o.form_id for o in options]
        assert "too_high" in ids and "too_low" in ids and "not_equal" in ids

    def test_defaults_from_context(self):
        options = forms_for(
            "avg",
            selected_values=np.array([100.0]),
            unselected_values=np.array([10.0, 20.0]),
        )
        too_high = next(o for o in options if o.form_id == "too_high")
        assert too_high.defaults["threshold"] == 20.0
        metric = too_high.build()
        assert isinstance(metric, TooHigh)
        assert metric.threshold == 20.0

    def test_build_with_override(self):
        options = forms_for("stddev")
        option = next(o for o in options if o.form_id == "too_high")
        metric = option.build(threshold=5.0)
        assert metric.threshold == 5.0

    def test_build_missing_param_raises(self):
        option = forms_for("avg")[0]
        with pytest.raises(SessionError):
            option.build()

    def test_unknown_aggregate_rejected(self):
        with pytest.raises(SessionError):
            forms_for("median")


class TestQueryRewriter:
    STATEMENT = parse_select(
        "SELECT day, sum(amount) AS total FROM c WHERE candidate = 'X' GROUP BY day"
    )

    def test_apply_conjoins_not(self):
        rewriter = QueryRewriter(self.STATEMENT)
        predicate = equals("memo", "BAD")
        statement = rewriter.apply(predicate)
        sql = statement.to_sql()
        assert "NOT" in sql and "BAD" in sql
        assert "candidate = 'X'" in sql

    def test_undo_restores(self):
        rewriter = QueryRewriter(self.STATEMENT)
        rewriter.apply(equals("memo", "BAD"))
        statement = rewriter.undo()
        assert statement == self.STATEMENT

    def test_stacked_cleanings_lifo(self):
        rewriter = QueryRewriter(self.STATEMENT)
        rewriter.apply(equals("memo", "BAD"))
        rewriter.apply(equals("state", "ZZ"))
        assert len(rewriter.applied) == 2
        rewriter.undo()
        assert [p.describe() for p in rewriter.applied] == ["memo = 'BAD'"]

    def test_reset(self):
        rewriter = QueryRewriter(self.STATEMENT)
        rewriter.apply(equals("memo", "BAD"))
        rewriter.reset()
        assert rewriter.applied == ()
        assert rewriter.current_statement() == self.STATEMENT

    def test_duplicate_apply_rejected(self):
        rewriter = QueryRewriter(self.STATEMENT)
        predicate = equals("memo", "BAD")
        rewriter.apply(predicate)
        with pytest.raises(SessionError):
            rewriter.apply(predicate)

    def test_true_predicate_rejected(self):
        rewriter = QueryRewriter(self.STATEMENT)
        with pytest.raises(SessionError):
            rewriter.apply(Predicate.true())

    def test_undo_without_apply_rejected(self):
        rewriter = QueryRewriter(self.STATEMENT)
        with pytest.raises(SessionError):
            rewriter.undo()

    def test_rewritten_sql_reparses(self):
        rewriter = QueryRewriter(self.STATEMENT)
        rewriter.apply(
            Predicate([CategoricalClause("memo", frozenset(["A", "B"]))])
        )
        reparsed = parse_select(rewriter.sql())
        assert reparsed == rewriter.current_statement()
