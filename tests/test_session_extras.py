"""Additional session and frontend coverage: PCA axes, min/max/count
debugging, sum-combined metrics, and multi-brush selections."""

import numpy as np
import pytest

from repro.core import NotEqual, RankedProvenance, TooHigh, TooLow
from repro.db import Database
from repro.frontend import Brush, DBWipesSession


@pytest.fixture
def retail_db():
    """Order lines where one store's max price is corrupted upward and a
    category's order count is inflated."""
    rng = np.random.default_rng(8)
    n = 600
    store = rng.integers(1, 7, n)
    price = np.round(rng.uniform(5, 80, n), 2)
    category = np.array(
        [["food", "toys", "tools"][i] for i in rng.integers(0, 3, n)],
        dtype=object,
    )
    # Corruption: store 4 got a batch of 9999-priced rows.
    bad = rng.choice(np.flatnonzero(store == 4), 10, replace=False)
    price[bad] = np.round(rng.uniform(9000, 9999, 10), 2)
    db = Database()
    db.create_table(
        "orders",
        {"store": store, "price": price, "category": list(category)},
        types={"store": "int", "price": "float", "category": "str"},
    )
    return db, bad


class TestOtherAggregatesEndToEnd:
    def test_debug_max_aggregate(self, retail_db):
        db, bad = retail_db
        result = db.sql(
            "SELECT store, max(price) AS peak FROM orders GROUP BY store "
            "ORDER BY store"
        )
        peaks = np.asarray(result.column("peak"))
        S = [i for i in range(result.num_rows) if peaks[i] > 1000]
        report = RankedProvenance().debug(result, S, TooHigh(100.0),
                                          dprime_tids=bad)
        assert len(report) > 0
        assert report.best.relative_error_reduction > 0.9
        assert "price" in report.best.predicate.columns() or (
            "store" in report.best.predicate.columns()
        )

    def test_debug_min_aggregate(self):
        db = Database()
        db.create_table(
            "t",
            {"g": [0, 0, 0, 1, 1, 1], "v": [5.0, 6.0, -40.0, 5.5, 6.5, 5.0]},
            types={"g": "int", "v": "float"},
        )
        result = db.sql("SELECT g, min(v) AS lo FROM t GROUP BY g ORDER BY g")
        report = RankedProvenance().debug(result, [0], TooLow(0.0),
                                          dprime_tids=[2])
        assert len(report) > 0
        assert report.best.epsilon_after == 0.0

    def test_debug_count_star(self):
        db = Database()
        rows = {"g": [0] * 50 + [1] * 10, "k": ["dup"] * 40 + ["ok"] * 20}
        db.create_table("t", rows, types={"g": "int", "k": "str"})
        result = db.sql("SELECT g, count(*) AS n FROM t GROUP BY g ORDER BY g")
        report = RankedProvenance().debug(
            result, [0], TooHigh(15.0), dprime_tids=list(range(40))
        )
        assert len(report) > 0
        # Removing the duplicated-key tuples fixes the count.
        assert report.best.epsilon_after <= report.best.epsilon_before

    def test_sum_combined_metric_end_to_end(self, retail_db):
        db, bad = retail_db
        result = db.sql(
            "SELECT store, avg(price) AS m FROM orders GROUP BY store "
            "ORDER BY store"
        )
        values = np.asarray(result.column("m"))
        S = list(range(result.num_rows))
        metric = TooHigh(float(np.median(values)) + 10.0, combine="sum")
        report = RankedProvenance().debug(result, S, metric, dprime_tids=bad)
        assert report.epsilon > 0
        if report.best is not None:
            assert report.best.epsilon_after < report.epsilon

    def test_not_equal_metric(self):
        db = Database()
        db.create_table(
            "t",
            {"g": [0, 0, 1, 1], "v": [10.0, 10.0, 10.0, 90.0]},
            types={"g": "int", "v": "float"},
        )
        result = db.sql("SELECT g, avg(v) AS m FROM t GROUP BY g ORDER BY g")
        report = RankedProvenance().debug(result, [0, 1], NotEqual(10.0),
                                          dprime_tids=[3])
        assert report.epsilon == pytest.approx(40.0)


class TestSessionSelectionModes:
    def test_multiple_brushes_union(self, retail_db):
        db, __ = retail_db
        session = DBWipesSession(db)
        session.execute(
            "SELECT store, avg(price) AS m FROM orders GROUP BY store "
            "ORDER BY store"
        )
        rows = session.select_results(
            [Brush.over_x(1, 1), Brush.over_x(6, 6)]
        )
        stores = {session.result.row(r)[0] for r in rows}
        assert stores == {1, 6}

    def test_categorical_x_axis_selection(self, retail_db):
        db, __ = retail_db
        session = DBWipesSession(db)
        session.execute(
            "SELECT category, count(*) AS n FROM orders GROUP BY category "
            "ORDER BY category"
        )
        scatter = session.scatter()
        assert scatter.x_categories == ("food", "tools", "toys")
        rows = session.select_results(Brush.over_x(0, 0))
        assert session.result.row(rows[0])[0] == "food"

    def test_zoom_with_explicit_axes(self, retail_db):
        db, __ = retail_db
        session = DBWipesSession(db)
        session.execute(
            "SELECT store, max(price) AS peak FROM orders GROUP BY store "
            "ORDER BY store"
        )
        session.select_results([3])
        zoomed = session.zoom(x="price", y="price")
        assert zoomed.x_label == "price"

    def test_error_form_for_max(self, retail_db):
        db, __ = retail_db
        session = DBWipesSession(db)
        session.execute(
            "SELECT store, max(price) AS peak FROM orders GROUP BY store"
        )
        session.select_results([0])
        ids = [o.form_id for o in session.error_form()]
        assert ids[0] == "too_high"  # max leads with too-high


# ----------------------------------------------------------------------
# Eviction vs. in-flight requests (regression: the LRU/TTL paths used to
# evict sessions that a concurrent request was still borrowing).
# ----------------------------------------------------------------------

def _tiny_catalog():
    from repro.service import DatasetCatalog

    def build():
        db = Database()
        db.create_table(
            "t",
            {"g": [0, 0, 1, 1], "v": [1.0, 2.0, 3.0, 4.0]},
            types={"g": "int", "v": "float"},
        )
        return db

    catalog = DatasetCatalog()
    catalog.register(
        "tiny", build, bootstrap="SELECT g, avg(v) AS avg_v FROM t GROUP BY g"
    )
    return catalog


class _FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestEvictionSkipsBusySessions:
    def test_lru_evicts_next_least_recent_instead_of_busy(self):
        from repro.service import SessionManager

        manager = SessionManager(catalog=_tiny_catalog(), max_sessions=2)
        manager.open("a", "tiny")
        manager.open("b", "tiny")
        with manager.borrow("a"):
            manager.get("b")  # "a" is now the LRU candidate — but busy
            manager.open("c", "tiny")
            assert "a" in manager  # survived: it has an in-flight borrow
            assert "b" not in manager  # the next-least-recent idle victim
            assert "c" in manager

    def test_bound_temporarily_exceeded_when_all_others_busy(self):
        from repro.service import SessionManager

        manager = SessionManager(catalog=_tiny_catalog(), max_sessions=1)
        manager.open("a", "tiny")
        with manager.borrow("a"):
            manager.open("b", "tiny")
            # No idle victim: the bound stretches instead of orphaning "a".
            assert len(manager) == 2
        # Once "a" is idle again, the next open resumes normal eviction.
        manager.open("c", "tiny")
        assert len(manager) == 1
        assert "c" in manager

    def test_ttl_reaper_skips_borrowed_session(self):
        from repro.service import SessionManager

        clock = _FakeClock()
        manager = SessionManager(
            catalog=_tiny_catalog(), ttl_seconds=10.0, clock=clock
        )
        manager.open("a", "tiny")
        with manager.borrow("a") as session:
            clock.advance(100.0)
            assert manager.evict_expired() == 0  # busy: not reaped
            # The in-flight request still runs against a live session.
            session.execute("SELECT g, avg(v) AS avg_v FROM t GROUP BY g")
        assert manager.evict_expired() == 1  # idle + expired: reaped now

    def test_concurrent_open_flood_never_evicts_inflight_session(self):
        import threading

        from repro.service import SessionManager

        manager = SessionManager(catalog=_tiny_catalog(), max_sessions=2)
        manager.open("hot", "tiny")
        started = threading.Event()
        release = threading.Event()
        failures = []

        def hold():
            try:
                with manager.borrow("hot") as session:
                    started.set()
                    release.wait(5.0)
                    # The session must still answer after the flood.
                    session.execute(
                        "SELECT g, avg(v) AS avg_v FROM t GROUP BY g"
                    )
            except Exception as exc:  # pragma: no cover - regression path
                failures.append(exc)
                started.set()

        thread = threading.Thread(target=hold)
        thread.start()
        assert started.wait(5.0)
        # Flood the manager far past its bound while "hot" is borrowed.
        for i in range(20):
            manager.open(f"filler-{i}", "tiny")
        assert "hot" in manager  # the busy session was never a victim
        release.set()
        thread.join(5.0)
        assert not thread.is_alive()
        assert failures == []
        assert len(manager) == manager.max_sessions
