"""The self-healing worker tier: journals, failover, drain, faults.

Unit coverage for the PR-10 fault-tolerance primitives (session
journals, the deterministic :class:`FaultPlan` harness, replica sets,
circuit breakers, the retry helper) plus the chaos acceptance paths:
SIGKILL the primary mid-``debug`` and get the journal-replayed,
failed-over answer byte-identical to a no-fault run; drain + restart a
worker without losing a session; survive a front-end restart by
adopting journaled sessions; kill a worker mid-stream and still get a
structured terminal error.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.errors import ServiceError
from repro.service import (
    AsyncDBWipesServer,
    CircuitBreaker,
    DBWipesServer,
    FaultPlan,
    HashRing,
    JournalStore,
    ServiceClient,
    WorkerPool,
)
from repro.service import faults
from repro.service.workers import WorkerHandle

from test_async_service import routed_toy_catalog
from test_service import TOY_SQL


@pytest.fixture(autouse=True)
def _no_leaked_faults():
    """Every test starts and ends with no fault plan in force."""
    faults.clear()
    yield
    faults.clear()


def _drive_to_metric(client: ServiceClient) -> None:
    client.execute(TOY_SQL)
    client.select_results(brush={"above": 5.0})
    client.zoom()
    client.select_inputs(brush={"above": 50.0})
    client.set_metric("too_high", threshold=2.0)


def _report(client: ServiceClient) -> dict:
    report = client.debug()
    report["timings"] = None  # wall-clock differs run to run, by design
    return report


def canonical(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True)


# ----------------------------------------------------------------------
# journals
# ----------------------------------------------------------------------


class TestJournalStore:
    def test_roundtrip_and_peek(self, tmp_path):
        store = JournalStore(tmp_path)
        journal = store.create("alice", "toy")
        journal.append("execute", {"sql": TOY_SQL, "max_rows": None})
        journal.append("set_metric", {"form": "too_high", "params": {}})
        assert store.exists("alice")
        assert store.peek("alice") == "toy"
        loaded = store.load("alice")
        assert loaded.dataset == "toy"
        assert loaded.corrupt_records == 0
        assert loaded.records == [
            ("execute", {"sql": TOY_SQL, "max_rows": None}),
            ("set_metric", {"form": "too_high", "params": {}}),
        ]

    def test_reopen_truncates_history(self, tmp_path):
        store = JournalStore(tmp_path)
        journal = store.create("alice", "toy")
        journal.append("execute", {"sql": TOY_SQL})
        store.create("alice", "toy")  # explicit open starts fresh
        assert store.load("alice").records == []

    def test_corrupt_tail_yields_longest_valid_prefix(self, tmp_path):
        store = JournalStore(tmp_path)
        journal = store.create("alice", "toy")
        journal.append("execute", {"sql": TOY_SQL})
        journal.append("set_metric", {"form": "too_high"})
        path = store.path_for("alice")
        lines = path.read_text().splitlines()
        lines[-1] = lines[-1][:-10] + "X" * 10  # smash the last record
        path.write_text("\n".join(lines) + "\n")
        loaded = store.load("alice")
        assert loaded.records == [("execute", {"sql": TOY_SQL})]
        assert loaded.corrupt_records == 1
        assert store.stats()["corrupt_records"] == 1

    def test_corrupt_open_record_is_a_miss(self, tmp_path):
        store = JournalStore(tmp_path)
        store.create("alice", "toy")
        path = store.path_for("alice")
        path.write_text("not json at all\n" + path.read_text())
        assert store.load("alice") is None
        assert store.peek("alice") is None

    def test_discard_forgets_the_session(self, tmp_path):
        store = JournalStore(tmp_path)
        store.create("alice", "toy")
        assert store.sessions() == 1
        store.discard("alice")
        assert store.sessions() == 0
        assert store.load("alice") is None
        store.discard("alice")  # idempotent

    def test_fault_plan_corrupts_one_record_then_repairs(self, tmp_path):
        store = JournalStore(tmp_path)
        journal = store.create("alice", "toy")
        journal.append("execute", {"sql": TOY_SQL})
        faults.install(FaultPlan(corrupt_session="alice", corrupt_seq=1))
        journal.append("set_metric", {"form": "too_high"})
        # Record 1's line was published with a bad checksum: replay
        # keeps only the (empty) prefix before it.
        assert store.load("alice").records == []
        # The corruption trigger is one-shot and the in-memory records
        # are authoritative — the next publish repairs the file (this
        # is drain_prepare's repair path in miniature).
        journal.publish()
        assert [cmd for cmd, _ in store.load("alice").records] == [
            "execute",
            "set_metric",
        ]


# ----------------------------------------------------------------------
# the fault harness
# ----------------------------------------------------------------------


class TestFaultPlan:
    def test_kill_fires_once_on_nth_request(self):
        plan = FaultPlan(kill_worker=1, kill_on_request=2)
        assert plan.worker_request(1) == (False, False)
        assert plan.worker_request(0) == (False, False)  # other worker
        assert plan.worker_request(1) == (True, False)
        assert plan.worker_request(1) == (False, False)  # one-shot
        assert plan.describe()["kill"]["fired"] is True

    def test_drop_reply_fires_once(self):
        plan = FaultPlan(drop_worker=0, drop_on_request=1)
        assert plan.worker_request(0) == (False, True)
        assert plan.worker_request(0) == (False, False)

    def test_delay_budget(self):
        plan = FaultPlan(delay_cmd="debug", delay_seconds=0.25, delay_times=2)
        assert plan.delay_before("execute") == 0.0
        assert plan.delay_before("debug") == 0.25
        assert plan.delay_before("debug") == 0.25
        assert plan.delay_before("debug") == 0.0  # budget spent

    def test_env_plan_parses_and_caches(self, monkeypatch):
        monkeypatch.setenv(
            faults.FAULT_PLAN_ENV,
            json.dumps({"kill": {"worker": 3, "request": 5}}),
        )
        plan = faults.active_plan()
        assert plan is not None and plan.kill_worker == 3
        assert plan.kill_on_request == 5
        assert faults.active_plan() is plan  # cached against the raw value
        monkeypatch.setenv(faults.FAULT_PLAN_ENV, "not json")
        assert faults.active_plan() is None

    def test_installed_plan_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(
            faults.FAULT_PLAN_ENV, json.dumps({"kill": {"worker": 3}})
        )
        mine = FaultPlan(kill_worker=0)
        faults.install(mine)
        assert faults.active_plan() is mine
        faults.clear()
        assert faults.active_plan().kill_worker == 3


# ----------------------------------------------------------------------
# replica sets + breakers
# ----------------------------------------------------------------------


class TestReplicaSets:
    def test_nodes_for_prefix_and_determinism(self):
        first = HashRing(range(5))
        second = HashRing(range(5))
        for i in range(50):
            key = f"dataset-{i}"
            replicas = first.nodes_for(key, 3)
            assert replicas == second.nodes_for(key, 3)
            assert len(set(replicas)) == 3
            assert replicas[0] == first.node_for(key)
            assert first.nodes_for(key, 2) == replicas[:2]

    def test_nodes_for_exhausts_small_rings(self):
        ring = HashRing(range(2))
        assert sorted(ring.nodes_for("k", 10)) == [0, 1]
        with pytest.raises(ValueError):
            ring.nodes_for("k", 0)


class TestCircuitBreaker:
    def test_full_transition_cycle(self):
        clock = {"now": 0.0}
        breaker = CircuitBreaker(
            threshold=3, reset_seconds=5.0, clock=lambda: clock["now"]
        )
        assert breaker.state == "closed" and breaker.state_value == 0
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.allow()  # still closed below the threshold
        breaker.record_failure()
        assert breaker.state == "open" and breaker.state_value == 2
        assert not breaker.allow()
        clock["now"] = 4.9
        assert not breaker.allow()
        clock["now"] = 5.0
        assert breaker.allow()  # the half-open probe
        assert breaker.state == "half_open" and breaker.state_value == 1
        assert not breaker.allow()  # only one probe at a time
        breaker.record_failure()  # probe failed: re-open for a full window
        assert breaker.state == "open"
        clock["now"] = 10.0
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"


# ----------------------------------------------------------------------
# the client retry helper
# ----------------------------------------------------------------------


class _ScriptedClient(ServiceClient):
    """call() pops scripted outcomes instead of touching a socket."""

    def __init__(self, script):
        super().__init__(session="scripted")
        self.script = list(script)

    def call(self, cmd, session=None, **args):
        outcome = self.script.pop(0)
        if isinstance(outcome, Exception):
            raise outcome
        return outcome


class _HalfRng:
    def random(self):
        return 0.5  # jitter factor exactly 1.0


class TestCallWithRetry:
    def test_schedule_honors_retry_after_and_doubles(self):
        client = _ScriptedClient(
            [
                ServiceError("busy", kind="ServerBusy", retry_after=0.3),
                ServiceError("died", kind="WorkerCrashed"),
                ServiceError("slow", kind="WorkerTimeout"),
                {"done": True},
            ]
        )
        sleeps: list[float] = []
        result = client.call_with_retry(
            "debug",
            base_backoff=0.05,
            max_backoff=2.0,
            sleep=sleeps.append,
            rng=_HalfRng(),
        )
        assert result == {"done": True}
        # retry_after floor (0.3) beats the first backoff step (0.05);
        # then pure exponential: 0.1, 0.2.
        assert sleeps == pytest.approx([0.3, 0.1, 0.2])

    def test_non_retryable_kind_raises_immediately(self):
        client = _ScriptedClient(
            [ServiceError("nope", kind="SessionError"), {"never": True}]
        )
        sleeps: list[float] = []
        with pytest.raises(ServiceError) as excinfo:
            client.call_with_retry("debug", sleep=sleeps.append)
        assert excinfo.value.kind == "SessionError"
        assert sleeps == []

    def test_retries_exhaust(self):
        client = _ScriptedClient(
            [
                ServiceError("died", kind="WorkerCrashed"),
                ServiceError("died again", kind="WorkerCrashed"),
            ]
        )
        sleeps: list[float] = []
        with pytest.raises(ServiceError):
            client.call_with_retry(
                "debug", retries=1, sleep=sleeps.append, rng=_HalfRng()
            )
        assert len(sleeps) == 1


# ----------------------------------------------------------------------
# pool close race (regression)
# ----------------------------------------------------------------------


class TestPoolCloseRace:
    def test_worker_crash_during_close_never_respawns(self, monkeypatch):
        """A worker that dies while a sibling is being reaped must find
        its respawn guard already latched (two-phase close) — the old
        one-phase close leaked a freshly respawned orphan here."""
        pool = WorkerPool(2)
        h0, h1 = pool.workers
        victim_process = h1.process
        original_reap = WorkerHandle.reap

        def chaotic_reap(self):
            if self is h0 and victim_process is not None:
                victim_process.kill()
                # Give h1's reader thread time to observe the EOF and
                # take its crash-vs-close branch while h0 is reaped.
                deadline = time.monotonic() + 2.0
                while victim_process.is_alive() and time.monotonic() < deadline:
                    time.sleep(0.01)
                time.sleep(0.2)
            original_reap(self)

        monkeypatch.setattr(WorkerHandle, "reap", chaotic_reap)
        pool.close()
        assert h1.restarts == 0
        assert h1.process is None or not h1.process.is_alive()
        envelope = h1.call({"id": 1, "cmd": "ping"})
        assert envelope["error"]["kind"] == "WorkerCrashed"


# ----------------------------------------------------------------------
# chaos acceptance: the routed tier heals
# ----------------------------------------------------------------------


class TestChaosAcceptance:
    def test_kill_primary_mid_debug_answers_byte_identical(
        self, tmp_path, monkeypatch
    ):
        """SIGKILL the dataset's primary while it serves ``debug``: the
        router replays the session's journal on the replica and answers
        byte-identically to a no-fault run — the client never sees the
        crash."""
        monkeypatch.setenv("REPRO_DATA_DIR", str(tmp_path))
        with DBWipesServer(
            port=0, workers=2, catalog_factory=routed_toy_catalog
        ) as srv:
            host, port = srv.address
            assert srv.dispatcher.journals is not None
            primary = int(srv.dispatcher.ring.node_for("toy"))
            with ServiceClient(host, port, session="ref", timeout=120) as c:
                c.open("toy")
                _drive_to_metric(c)
                reference = _report(c)
            with ServiceClient(host, port, session="victim", timeout=120) as c:
                c.open("toy")
                _drive_to_metric(c)
                faults.install(
                    FaultPlan(kill_worker=primary, kill_on_request=1)
                )
                healed = _report(c)
            assert canonical(healed) == canonical(reference)
            # The placement failed over to the replica, and the crash
            # surfaced in telemetry rather than at the client.
            placed_on, dataset = srv.dispatcher.placement_of("victim")
            assert placed_on != primary and dataset == "toy"
            with ServiceClient(host, port, timeout=120) as c:
                merged = c.metrics()["merged"]
            totals = {
                name: 0.0
                for name in (
                    "dbwipes_failovers_total",
                    "dbwipes_sessions_recovered_total",
                )
            }
            for series in merged["metrics"]:
                if series["name"] in totals:
                    totals[series["name"]] += series["value"]
            assert totals["dbwipes_failovers_total"] >= 1
            assert totals["dbwipes_sessions_recovered_total"] >= 1

    def test_front_end_restart_adopts_journaled_sessions(
        self, tmp_path, monkeypatch
    ):
        """Placements are in-memory but journals are not: a brand-new
        server over the same data dir re-admits a session it has never
        seen, replaying it on first touch."""
        monkeypatch.setenv("REPRO_DATA_DIR", str(tmp_path))
        with DBWipesServer(
            port=0, workers=2, catalog_factory=routed_toy_catalog
        ) as first:
            with ServiceClient(
                *first.address, session="survivor", timeout=120
            ) as c:
                c.open("toy")
                _drive_to_metric(c)
                reference = _report(c)
        with DBWipesServer(
            port=0, workers=2, catalog_factory=routed_toy_catalog
        ) as second:
            assert second.dispatcher.placement_of("survivor") is None
            with ServiceClient(
                *second.address, session="survivor", timeout=120
            ) as c:
                # No open: the journal alone re-admits the session.
                assert canonical(_report(c)) == canonical(reference)
            assert second.dispatcher.placement_of("survivor") is not None

    def test_unknown_session_still_rejected_at_front(
        self, tmp_path, monkeypatch
    ):
        """A session with neither placement nor journal is refused
        without a worker round-trip, exactly as before."""
        monkeypatch.setenv("REPRO_DATA_DIR", str(tmp_path))
        with DBWipesServer(
            port=0, workers=2, catalog_factory=routed_toy_catalog
        ) as srv:
            with ServiceClient(*srv.address, session="ghost") as c:
                with pytest.raises(ServiceError) as excinfo:
                    c.execute(TOY_SQL)
                assert excinfo.value.kind == "UnknownSession"
            assert all(
                s["requests"] == 0 for s in srv.dispatcher.pool.stats()
            )

    def test_drain_restart_loses_no_sessions(self, tmp_path, monkeypatch):
        """Drain the primary with restart: its sessions hand off to the
        replica by replay, the process is replaced, and every session
        keeps answering — the rolling-restart acceptance."""
        monkeypatch.setenv("REPRO_DATA_DIR", str(tmp_path))
        with DBWipesServer(
            port=0, workers=2, catalog_factory=routed_toy_catalog
        ) as srv:
            host, port = srv.address
            primary = int(srv.dispatcher.ring.node_for("toy"))
            with ServiceClient(host, port, session="a", timeout=120) as ca:
                ca.open("toy")
                _drive_to_metric(ca)
                reference = _report(ca)
                with ServiceClient(
                    host, port, session="b", timeout=120
                ) as cb:
                    cb.open("toy")
                    _drive_to_metric(cb)
                    summary = ca.drain(primary, deadline=5.0, restart=True)
                    assert summary["worker"] == primary
                    assert summary["sessions_moved"] == 2
                    assert summary["sessions_failed"] == 0
                    assert summary["restarted"] is True
                    assert summary["draining"] is False
                    # Both sessions answer, now from the replica, with
                    # the same bytes as before the drain.
                    assert canonical(_report(ca)) == canonical(reference)
                    assert canonical(_report(cb)) == canonical(reference)
                    for name in ("a", "b"):
                        worker, _ = srv.dispatcher.placement_of(name)
                        assert worker != primary

    def test_resize_rebalances_instead_of_dropping(
        self, tmp_path, monkeypatch
    ):
        """Shrinking the pool replays doomed workers' sessions onto the
        survivors; growing keeps placements put."""
        monkeypatch.setenv("REPRO_DATA_DIR", str(tmp_path))
        with DBWipesServer(
            port=0, workers=2, catalog_factory=routed_toy_catalog
        ) as srv:
            host, port = srv.address
            primary = int(srv.dispatcher.ring.node_for("toy"))
            with ServiceClient(host, port, session="mover", timeout=120) as c:
                c.open("toy")
                _drive_to_metric(c)
                reference = _report(c)
                grown = c.resize(3)
                assert grown["workers"] == 3
                assert grown["sessions_dropped"] == 0
                # Park the session on the highest surviving index, then
                # shrink past it: the placement must move by replay.
                c.drain(primary, deadline=2.0, restart=True)
                worker, _ = srv.dispatcher.placement_of("mover")
                assert worker != primary
                shrunk = c.resize(1)
                assert shrunk["workers"] == 1
                if worker >= 1:
                    assert shrunk["sessions_moved"] >= 1
                assert srv.dispatcher.placement_of("mover")[0] == 0
                assert canonical(_report(c)) == canonical(reference)
            assert len(srv.dispatcher.pool) == 1

    def test_corrupt_journal_recovers_longest_prefix(
        self, tmp_path, monkeypatch
    ):
        """A journal with a smashed tail still recovers: replay stops at
        the corruption and reports it, and the session is usable from
        the surviving prefix."""
        monkeypatch.setenv("REPRO_DATA_DIR", str(tmp_path))
        with DBWipesServer(
            port=0, workers=2, catalog_factory=routed_toy_catalog
        ) as srv:
            host, port = srv.address
            with ServiceClient(
                host, port, session="patchy", timeout=120
            ) as c:
                c.open("toy")
                _drive_to_metric(c)
                _report(c)
            store = srv.dispatcher.journals
            path = store.path_for("patchy")
            lines = path.read_text().splitlines()
            # Smash everything after execute: brushes/metric/debug gone.
            lines[2] = lines[2][:-8] + "X" * 8
            path.write_text("\n".join(lines) + "\n")
        monkeypatch.setenv("REPRO_DATA_DIR", str(tmp_path))
        with DBWipesServer(
            port=0, workers=2, catalog_factory=routed_toy_catalog
        ) as srv:
            with ServiceClient(
                *srv.address, session="patchy", timeout=120
            ) as c:
                recovered = c.recover()
                assert recovered["recovered"] == "patchy"
                assert recovered["corrupt_records"] == 1
                assert recovered["replayed"] == 1  # execute only
                # The session works from the prefix: re-drive the rest.
                c.select_results(brush={"above": 5.0})
                c.zoom()
                c.select_inputs(brush={"above": 50.0})
                c.set_metric("too_high", threshold=2.0)
                assert _report(c)["n_predicates"] >= 1

    def test_crash_mid_stream_yields_structured_terminal_error(
        self, monkeypatch
    ):
        """No journal tier: killing the worker during a streamed debug
        must end the exchange with a structured WorkerCrashed envelope —
        never a hang or a truncated line."""
        monkeypatch.delenv("REPRO_DATA_DIR", raising=False)
        with AsyncDBWipesServer(
            port=0, workers=2, catalog_factory=routed_toy_catalog
        ) as srv:
            host, port = srv.address
            assert srv.dispatcher.journals is None
            primary = int(srv.dispatcher.ring.node_for("toy"))
            with ServiceClient(
                host, port, session="streamer", timeout=120
            ) as c:
                c.open("toy")
                _drive_to_metric(c)
                faults.install(
                    FaultPlan(kill_worker=primary, kill_on_request=1)
                )
                with pytest.raises(ServiceError) as excinfo:
                    for _frame in c.debug_stream():
                        pass
                assert excinfo.value.kind == "WorkerCrashed"
                # The connection survived the crash: the same client
                # reopens and finishes the cycle on the respawned tier.
                faults.clear()
                c.open("toy")
                _drive_to_metric(c)
                assert _report(c)["n_predicates"] >= 1


class TestSingleProcessLifecycleCommands:
    def test_drain_and_resize_need_workers(self):
        with DBWipesServer(port=0) as srv:
            with ServiceClient(*srv.address, session="solo") as c:
                for cmd, args in (
                    ("drain", {"worker": 0}),
                    ("resize", {"workers": 2}),
                ):
                    with pytest.raises(ServiceError) as excinfo:
                        c.call(cmd, **args)
                    assert "multi-worker" in str(excinfo.value)
