"""Tests for the decision tree learner."""

import numpy as np
import pytest

from repro.db import Table
from repro.errors import LearnError, NotFittedError
from repro.learn import CRITERIA, DecisionTree
from repro.learn.tree import CategoricalSplit, NumericSplit


@pytest.fixture
def xor_table():
    """Numeric XOR-ish data: positive iff exactly one of x, y is high."""
    rng = np.random.default_rng(3)
    n = 400
    x = rng.random(n)
    y = rng.random(n)
    labels = (x > 0.5) ^ (y > 0.5)
    table = Table.from_columns({"x": x, "y": y})
    return table, labels


class TestFitBasics:
    @pytest.mark.parametrize("criterion", CRITERIA)
    def test_separable_data_perfect_fit(self, separable_table, criterion):
        table, labels = separable_table
        tree = DecisionTree(criterion=criterion, max_depth=4).fit(table, labels)
        assert (tree.predict(table) == labels).all()

    def test_xor_needs_depth_two(self, xor_table):
        table, labels = xor_table
        shallow = DecisionTree(max_depth=1).fit(table, labels)
        deep = DecisionTree(max_depth=3).fit(table, labels)
        acc_shallow = (shallow.predict(table) == labels).mean()
        acc_deep = (deep.predict(table) == labels).mean()
        assert acc_deep > 0.95
        assert acc_deep > acc_shallow

    def test_categorical_split(self):
        table = Table.from_columns(
            {"k": ["a", "a", "b", "b", "c", "c"], "z": [1.0] * 6},
            types={"k": "str", "z": "float"},
        )
        labels = np.array([1, 1, 0, 0, 0, 0], dtype=bool)
        tree = DecisionTree(max_depth=2).fit(table, labels)
        assert (tree.predict(table) == labels).all()

    def test_pure_node_is_leaf(self):
        table = Table.from_columns({"x": [1.0, 2.0, 3.0]})
        labels = np.ones(3, dtype=bool)
        tree = DecisionTree().fit(table, labels)
        assert tree.n_leaves == 1
        assert tree.depth == 0

    def test_max_depth_respected(self, xor_table):
        table, labels = xor_table
        tree = DecisionTree(max_depth=2).fit(table, labels)
        assert tree.depth <= 2

    def test_min_samples_leaf_respected(self, separable_table):
        table, labels = separable_table
        tree = DecisionTree(min_samples_leaf=30).fit(table, labels)

        def check(node):
            if node.is_leaf:
                assert node.n_samples >= 30 or node.depth == 0
            else:
                check(node.left)
                check(node.right)

        check(tree._root)

    def test_sample_weights_decide_leaf_majority(self):
        # Identical features, conflicting labels: the weights decide the
        # leaf prediction.
        table = Table.from_columns({"x": [1.0, 1.0]})
        labels = np.array([1, 0], dtype=bool)
        heavy_pos = DecisionTree().fit(
            table, labels, sample_weight=np.array([3.0, 1.0])
        )
        heavy_neg = DecisionTree().fit(
            table, labels, sample_weight=np.array([1.0, 3.0])
        )
        assert heavy_pos.predict(table).all()
        assert not heavy_neg.predict(table).any()

    def test_nan_routes_right(self):
        table = Table.from_columns(
            {"x": [1.0, 2.0, 10.0, 11.0, float("nan")]},
            types={"x": "float"},
        )
        labels = np.array([1, 1, 0, 0, 0], dtype=bool)
        tree = DecisionTree(max_depth=1, min_samples_leaf=1).fit(table, labels)
        predictions = tree.predict(table)
        assert not predictions[4]  # NaN followed the negative majority right

    def test_errors(self):
        table = Table.from_columns({"x": [1.0]})
        with pytest.raises(LearnError):
            DecisionTree(criterion="nope")
        with pytest.raises(LearnError):
            DecisionTree().fit(table, np.array([True, False]))
        with pytest.raises(NotFittedError):
            DecisionTree().predict(table)
        with pytest.raises(LearnError):
            DecisionTree().fit(table, np.array([True]), sample_weight=np.array([-1.0]))


class TestPruning:
    def test_reduced_error_pruning_shrinks_overfit_tree(self):
        rng = np.random.default_rng(5)
        n = 600
        x = rng.random(n)
        noise_labels = (x > 0.5) ^ (rng.random(n) < 0.25)
        table = Table.from_columns({"x": x})
        half = n // 2
        train, val = (
            table.take(np.arange(half)),
            table.take(np.arange(half, n)),
        )
        tree = DecisionTree(max_depth=8, min_samples_leaf=1).fit(
            train, noise_labels[:half]
        )
        leaves_before = tree.n_leaves
        tree.prune_reduced_error(val, noise_labels[half:])
        assert tree.n_leaves < leaves_before
        # Accuracy on the validation set must not degrade.
        acc = (tree.predict(val) == noise_labels[half:]).mean()
        assert acc >= 0.70

    def test_ccp_alpha_zero_keeps_useful_splits(self, separable_table):
        table, labels = separable_table
        tree = DecisionTree(max_depth=4).fit(table, labels)
        tree.cost_complexity_prune(0.0)
        assert (tree.predict(table) == labels).all()

    def test_ccp_huge_alpha_collapses_to_stump_or_leaf(self, separable_table):
        table, labels = separable_table
        tree = DecisionTree(max_depth=5).fit(table, labels)
        tree.cost_complexity_prune(1e9)
        assert tree.n_leaves <= 2


class TestRules:
    def test_positive_rules_cover_predictions(self, separable_table):
        table, labels = separable_table
        tree = DecisionTree(max_depth=4).fit(table, labels)
        rules = tree.positive_rules()
        assert rules
        union = np.zeros(len(table), dtype=bool)
        for rule in rules:
            union |= rule.mask(table)
        predictions = tree.predict(table)
        # Rule union must equal positive predictions (modulo NaN routing,
        # absent in this data).
        assert (union == predictions).all()

    def test_rules_render_to_sql(self, separable_table):
        table, labels = separable_table
        tree = DecisionTree(max_depth=3).fit(table, labels)
        for rule in tree.positive_rules():
            sql = rule.predicate.to_sql()
            assert sql and "(" in sql

    def test_min_precision_filters_rules(self, xor_table):
        table, labels = xor_table
        tree = DecisionTree(max_depth=2).fit(table, labels)
        strict = tree.positive_rules(min_precision=0.99)
        loose = tree.positive_rules(min_precision=0.0)
        assert len(strict) <= len(loose)

    def test_rule_stats_populated(self, separable_table):
        table, labels = separable_table
        tree = DecisionTree(criterion="entropy", max_depth=3).fit(table, labels)
        rule = tree.positive_rules()[0]
        assert rule.n_covered > 0
        assert rule.source == "tree:entropy"
        assert 0 < rule.quality <= 1.0

    def test_to_text_structure(self, separable_table):
        table, labels = separable_table
        tree = DecisionTree(max_depth=2).fit(table, labels)
        text = tree.to_text()
        assert "if " in text and "leaf" in text


class TestSplits:
    def test_numeric_split_clauses(self):
        split = NumericSplit("x", 5.0)
        left = split.left_clause()
        right = split.right_clause()
        assert left.hi == 5.0 and left.hi_inclusive
        assert right.lo == 5.0 and not right.lo_inclusive

    def test_categorical_split_mask_none_goes_right(self):
        split = CategoricalSplit("k", "a")
        values = np.array(["a", "b", None], dtype=object)
        assert split.go_left(values).tolist() == [True, False, False]

    def test_numeric_split_nan_goes_right(self):
        split = NumericSplit("x", 5.0)
        values = np.array([1.0, np.nan, 9.0])
        assert split.go_left(values).tolist() == [True, False, False]
