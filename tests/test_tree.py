"""Tests for the decision tree learner."""

import numpy as np
import pytest

from repro.db import Table
from repro.errors import LearnError, NotFittedError
from repro.learn import ALGORITHMS, CRITERIA, DecisionTree, SplitIndex
from repro.learn.tree import CategoricalSplit, NumericSplit


@pytest.fixture
def xor_table():
    """Numeric XOR-ish data: positive iff exactly one of x, y is high."""
    rng = np.random.default_rng(3)
    n = 400
    x = rng.random(n)
    y = rng.random(n)
    labels = (x > 0.5) ^ (y > 0.5)
    table = Table.from_columns({"x": x, "y": y})
    return table, labels


class TestFitBasics:
    @pytest.mark.parametrize("criterion", CRITERIA)
    def test_separable_data_perfect_fit(self, separable_table, criterion):
        table, labels = separable_table
        tree = DecisionTree(criterion=criterion, max_depth=4).fit(table, labels)
        assert (tree.predict(table) == labels).all()

    def test_xor_needs_depth_two(self, xor_table):
        table, labels = xor_table
        shallow = DecisionTree(max_depth=1).fit(table, labels)
        deep = DecisionTree(max_depth=3).fit(table, labels)
        acc_shallow = (shallow.predict(table) == labels).mean()
        acc_deep = (deep.predict(table) == labels).mean()
        assert acc_deep > 0.95
        assert acc_deep > acc_shallow

    def test_categorical_split(self):
        table = Table.from_columns(
            {"k": ["a", "a", "b", "b", "c", "c"], "z": [1.0] * 6},
            types={"k": "str", "z": "float"},
        )
        labels = np.array([1, 1, 0, 0, 0, 0], dtype=bool)
        tree = DecisionTree(max_depth=2).fit(table, labels)
        assert (tree.predict(table) == labels).all()

    def test_pure_node_is_leaf(self):
        table = Table.from_columns({"x": [1.0, 2.0, 3.0]})
        labels = np.ones(3, dtype=bool)
        tree = DecisionTree().fit(table, labels)
        assert tree.n_leaves == 1
        assert tree.depth == 0

    def test_max_depth_respected(self, xor_table):
        table, labels = xor_table
        tree = DecisionTree(max_depth=2).fit(table, labels)
        assert tree.depth <= 2

    def test_min_samples_leaf_respected(self, separable_table):
        table, labels = separable_table
        tree = DecisionTree(min_samples_leaf=30).fit(table, labels)

        def check(node):
            if node.is_leaf:
                assert node.n_samples >= 30 or node.depth == 0
            else:
                check(node.left)
                check(node.right)

        check(tree._root)

    def test_sample_weights_decide_leaf_majority(self):
        # Identical features, conflicting labels: the weights decide the
        # leaf prediction.
        table = Table.from_columns({"x": [1.0, 1.0]})
        labels = np.array([1, 0], dtype=bool)
        heavy_pos = DecisionTree().fit(
            table, labels, sample_weight=np.array([3.0, 1.0])
        )
        heavy_neg = DecisionTree().fit(
            table, labels, sample_weight=np.array([1.0, 3.0])
        )
        assert heavy_pos.predict(table).all()
        assert not heavy_neg.predict(table).any()

    def test_nan_routes_right(self):
        table = Table.from_columns(
            {"x": [1.0, 2.0, 10.0, 11.0, float("nan")]},
            types={"x": "float"},
        )
        labels = np.array([1, 1, 0, 0, 0], dtype=bool)
        tree = DecisionTree(max_depth=1, min_samples_leaf=1).fit(table, labels)
        predictions = tree.predict(table)
        assert not predictions[4]  # NaN followed the negative majority right

    def test_errors(self):
        table = Table.from_columns({"x": [1.0]})
        with pytest.raises(LearnError):
            DecisionTree(criterion="nope")
        with pytest.raises(LearnError):
            DecisionTree().fit(table, np.array([True, False]))
        with pytest.raises(NotFittedError):
            DecisionTree().predict(table)
        with pytest.raises(LearnError):
            DecisionTree().fit(table, np.array([True]), sample_weight=np.array([-1.0]))


class TestPruning:
    def test_reduced_error_pruning_shrinks_overfit_tree(self):
        rng = np.random.default_rng(5)
        n = 600
        x = rng.random(n)
        noise_labels = (x > 0.5) ^ (rng.random(n) < 0.25)
        table = Table.from_columns({"x": x})
        half = n // 2
        train, val = (
            table.take(np.arange(half)),
            table.take(np.arange(half, n)),
        )
        tree = DecisionTree(max_depth=8, min_samples_leaf=1).fit(
            train, noise_labels[:half]
        )
        leaves_before = tree.n_leaves
        tree.prune_reduced_error(val, noise_labels[half:])
        assert tree.n_leaves < leaves_before
        # Accuracy on the validation set must not degrade.
        acc = (tree.predict(val) == noise_labels[half:]).mean()
        assert acc >= 0.70

    def test_ccp_alpha_zero_keeps_useful_splits(self, separable_table):
        table, labels = separable_table
        tree = DecisionTree(max_depth=4).fit(table, labels)
        tree.cost_complexity_prune(0.0)
        assert (tree.predict(table) == labels).all()

    def test_ccp_huge_alpha_collapses_to_stump_or_leaf(self, separable_table):
        table, labels = separable_table
        tree = DecisionTree(max_depth=5).fit(table, labels)
        tree.cost_complexity_prune(1e9)
        assert tree.n_leaves <= 2


class TestRules:
    def test_positive_rules_cover_predictions(self, separable_table):
        table, labels = separable_table
        tree = DecisionTree(max_depth=4).fit(table, labels)
        rules = tree.positive_rules()
        assert rules
        union = np.zeros(len(table), dtype=bool)
        for rule in rules:
            union |= rule.mask(table)
        predictions = tree.predict(table)
        # Rule union must equal positive predictions (modulo NaN routing,
        # absent in this data).
        assert (union == predictions).all()

    def test_rules_render_to_sql(self, separable_table):
        table, labels = separable_table
        tree = DecisionTree(max_depth=3).fit(table, labels)
        for rule in tree.positive_rules():
            sql = rule.predicate.to_sql()
            assert sql and "(" in sql

    def test_min_precision_filters_rules(self, xor_table):
        table, labels = xor_table
        tree = DecisionTree(max_depth=2).fit(table, labels)
        strict = tree.positive_rules(min_precision=0.99)
        loose = tree.positive_rules(min_precision=0.0)
        assert len(strict) <= len(loose)

    def test_rule_stats_populated(self, separable_table):
        table, labels = separable_table
        tree = DecisionTree(criterion="entropy", max_depth=3).fit(table, labels)
        rule = tree.positive_rules()[0]
        assert rule.n_covered > 0
        assert rule.source == "tree:entropy"
        assert 0 < rule.quality <= 1.0

    def test_to_text_structure(self, separable_table):
        table, labels = separable_table
        tree = DecisionTree(max_depth=2).fit(table, labels)
        text = tree.to_text()
        assert "if " in text and "leaf" in text


class TestTieBreaking:
    """Equal-gain splits must resolve deterministically: lowest column
    name, then lowest threshold / lowest categorical value — never by
    feature order or dict insertion order.

    The cross-column and categorical cases are crafted ties that failed
    before the deterministic selection: the old code kept the first
    feature in schema order (here ``z_col``) and the first-inserted
    categorical value (here ``"b"``).
    """

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_cross_column_tie_picks_lowest_column_name(self, algorithm):
        values = [1.0, 2.0, 10.0, 11.0]
        table = Table.from_columns(
            # Schema order deliberately puts "z_col" first: identical
            # columns tie exactly, and the tie must go to "a_col".
            {"z_col": values, "a_col": values},
            types={"z_col": "float", "a_col": "float"},
        )
        labels = np.array([1, 1, 0, 0], dtype=bool)
        tree = DecisionTree(max_depth=1, algorithm=algorithm).fit(table, labels)
        assert tree._root.split.attr == "a_col"

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_categorical_tie_picks_lowest_value(self, algorithm):
        # "b" is inserted first and ties "a" exactly (symmetric labels,
        # equal weight): selection must still be "a".
        table = Table.from_columns(
            {"k": ["b", "b", "a", "a"]}, types={"k": "str"}
        )
        labels = np.array([1, 1, 0, 0], dtype=bool)
        tree = DecisionTree(max_depth=1, algorithm=algorithm).fit(table, labels)
        assert tree._root.split.value == "a"

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_numeric_threshold_tie_picks_lowest_threshold(self, algorithm):
        # Symmetric gains at t=1.5 and t=2.5: must choose 1.5.
        table = Table.from_columns({"x": [1.0, 2.0, 3.0]})
        labels = np.array([1, 0, 1], dtype=bool)
        tree = DecisionTree(max_depth=1, min_samples_leaf=1, algorithm=algorithm).fit(
            table, labels
        )
        assert tree._root.split.threshold == 1.5

    def test_both_algorithms_agree_on_crafted_ties(self):
        values = [1.0, 2.0, 10.0, 11.0]
        table = Table.from_columns(
            {"z_col": values, "a_col": values, "k": ["b", "b", "a", "a"]},
            types={"z_col": "float", "a_col": "float", "k": "str"},
        )
        labels = np.array([1, 1, 0, 0], dtype=bool)
        texts = {
            algorithm: DecisionTree(max_depth=2, algorithm=algorithm)
            .fit(table, labels)
            .to_text()
            for algorithm in ALGORITHMS
        }
        assert texts["hist"] == texts["exact"]


def _noisy_split_data(seed: int = 5, n: int = 600):
    rng = np.random.default_rng(seed)
    x = rng.random(n)
    labels = (x > 0.5) ^ (rng.random(n) < 0.25)
    table = Table.from_columns({"x": x})
    half = n // 2
    train = table.take(np.arange(half))
    val = table.take(np.arange(half, n))
    return train, labels[:half], val, labels[half:]


class TestPruningOnHistogramTrees:
    """Pruning exercised on trees built by the histogram path (the
    pipeline default), including n_leaves / depth invariants."""

    def test_reduced_error_pruning_invariants(self):
        train, train_labels, val, val_labels = _noisy_split_data()
        tree = DecisionTree(
            max_depth=8, min_samples_leaf=1, algorithm="hist"
        ).fit(train, train_labels)
        leaves_before = tree.n_leaves
        depth_before = tree.depth
        tree.prune_reduced_error(val, val_labels)
        assert 1 <= tree.n_leaves < leaves_before
        assert tree.depth <= depth_before
        acc = (tree.predict(val) == val_labels).mean()
        assert acc >= 0.70

    def test_reduced_error_pruning_matches_exact_path(self):
        train, train_labels, val, val_labels = _noisy_split_data()
        index = SplitIndex.build(train)
        texts = []
        for algorithm in ALGORITHMS:
            tree = DecisionTree(
                max_depth=8, min_samples_leaf=1, algorithm=algorithm
            ).fit(train, train_labels, split_index=index)
            tree.prune_reduced_error(val, val_labels)
            texts.append(tree.to_text())
        assert texts[0] == texts[1]

    def test_ccp_alpha_ladder_is_monotone(self):
        train, train_labels, __, __ = _noisy_split_data(seed=9)
        leaves = []
        depths = []
        for alpha in (0.0, 0.5, 2.0, 8.0, 1e9):
            tree = DecisionTree(
                max_depth=8, min_samples_leaf=1, algorithm="hist"
            ).fit(train, train_labels)
            tree.cost_complexity_prune(alpha)
            leaves.append(tree.n_leaves)
            depths.append(tree.depth)
        assert leaves == sorted(leaves, reverse=True)
        assert depths == sorted(depths, reverse=True)
        assert leaves[-1] == 1 and depths[-1] == 0

    def test_ccp_matches_exact_path(self):
        train, train_labels, __, __ = _noisy_split_data(seed=11)
        index = SplitIndex.build(train)
        texts = []
        for algorithm in ALGORITHMS:
            tree = DecisionTree(
                max_depth=7, min_samples_leaf=2, algorithm=algorithm
            ).fit(train, train_labels, split_index=index)
            tree.cost_complexity_prune(0.8)
            texts.append(tree.to_text())
        assert texts[0] == texts[1]

    def test_pruned_hist_tree_still_extracts_rules(self, separable_table):
        table, labels = separable_table
        tree = DecisionTree(max_depth=5, algorithm="hist").fit(table, labels)
        tree.cost_complexity_prune(0.01)
        rules = tree.positive_rules()
        assert rules
        union = np.zeros(len(table), dtype=bool)
        for rule in rules:
            union |= rule.mask(table)
        assert (union == tree.predict(table)).all()


class TestSplitIndexSharing:
    def test_shared_index_equals_per_fit_index(self, separable_table):
        table, labels = separable_table
        index = SplitIndex.build(table)
        shared = DecisionTree(max_depth=4).fit(table, labels, split_index=index)
        fresh = DecisionTree(max_depth=4).fit(table, labels)
        assert shared.to_text() == fresh.to_text()

    def test_take_subsets_align(self, separable_table):
        table, labels = separable_table
        index = SplitIndex.build(table)
        rows = np.arange(0, len(table), 2, dtype=np.int64)
        sub = DecisionTree(max_depth=3).fit(
            table.take(rows), labels[rows], split_index=index.take(rows)
        )
        # Same thresholds as the full index; structure is a valid tree.
        assert sub.n_leaves >= 1
        assert (sub.predict(table.take(rows)) == labels[rows]).all()

    def test_row_count_mismatch_rejected(self, separable_table):
        table, labels = separable_table
        index = SplitIndex.build(table)
        with pytest.raises(LearnError):
            DecisionTree().fit(
                table.take(np.arange(10)), labels[:10], split_index=index
            )

    def test_missing_column_rejected(self, separable_table):
        table, labels = separable_table
        index = SplitIndex.build(table, features=["temp"])
        with pytest.raises(LearnError):
            DecisionTree().fit(table, labels, split_index=index)

    def test_threshold_cap_mismatch_rejected(self, separable_table):
        table, labels = separable_table
        index = SplitIndex.build(table, max_thresholds=64)
        with pytest.raises(LearnError):
            DecisionTree(max_thresholds=8).fit(table, labels, split_index=index)

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(LearnError):
            DecisionTree(algorithm="magic")


class TestSplits:
    def test_numeric_split_clauses(self):
        split = NumericSplit("x", 5.0)
        left = split.left_clause()
        right = split.right_clause()
        assert left.hi == 5.0 and left.hi_inclusive
        assert right.lo == 5.0 and not right.lo_inclusive

    def test_categorical_split_mask_none_goes_right(self):
        split = CategoricalSplit("k", "a")
        values = np.array(["a", "b", None], dtype=object)
        assert split.go_left(values).tolist() == [True, False, False]

    def test_numeric_split_nan_goes_right(self):
        split = NumericSplit("x", 5.0)
        values = np.array([1.0, np.nan, 9.0])
        assert split.go_left(values).tolist() == [True, False, False]
