"""Tests for the baseline explainers."""

import numpy as np
import pytest

from repro.baselines import (
    coarse_grained_explanation,
    fine_grained_explanation,
    predefined_criteria_explanation,
    responsibility_explanation,
)
from repro.core import Preprocessor, TooHigh, TooLow
from repro.db import Database


@pytest.fixture
def setup(donations_db):
    result = donations_db.sql(
        "SELECT day, sum(amount) AS total FROM donations GROUP BY day ORDER BY day"
    )
    totals = np.asarray(result.column("total"))
    S = [i for i in range(result.num_rows) if totals[i] < 0] or [
        int(np.argmin(totals))
    ]
    pre = Preprocessor().run(result, S, TooLow(0.0))
    return result, S, pre


class TestFineGrained:
    def test_returns_all_inputs(self, setup):
        result, S, pre = setup
        explanation = fine_grained_explanation(result, S)
        assert explanation.size == len(pre.F)

    def test_low_precision_by_construction(self, setup):
        result, S, pre = setup
        explanation = fine_grained_explanation(result, S)
        amounts = np.asarray(pre.F.column("amount"))
        bad = int((amounts < 0).sum())
        assert bad / explanation.size < 0.5  # most returned tuples are fine

    def test_top_unranked_prefix(self, setup):
        result, S, __ = setup
        explanation = fine_grained_explanation(result, S)
        assert len(explanation.top(3)) == 3


class TestCoarseGrained:
    def test_uninformative_pipeline_text(self, setup):
        result, __, __ = setup
        text = coarse_grained_explanation(result)
        assert "groupby" in text
        assert "aggregate" in text
        # No tuple ids anywhere: that is the point.
        assert "tid" not in text


class TestPredefinedCriteria:
    def test_sum_too_low_ranks_smallest_first(self, setup):
        __, __, pre = setup
        explanation = predefined_criteria_explanation(pre)
        top = explanation.top(5)
        amounts = {
            int(t): float(a)
            for t, a in zip(pre.F.tids, pre.F.column("amount"))
        }
        for tid in top:
            assert amounts[int(tid)] < 0

    def test_stddev_ranks_by_distance_from_mean(self, donations_db):
        result = donations_db.sql(
            "SELECT candidate, stddev(amount) AS s FROM donations "
            "GROUP BY candidate ORDER BY candidate"
        )
        pre = Preprocessor().run(result, [1], TooHigh(0.0), agg_name="s")
        explanation = predefined_criteria_explanation(pre)
        top_tid = int(explanation.top(1)[0])
        amounts = np.asarray(pre.F.column("amount"))
        distances = np.abs(amounts - amounts.mean())
        top_value = amounts[pre.F.position_of(top_tid)]
        assert abs(top_value - amounts.mean()) == pytest.approx(distances.max())


class TestResponsibility:
    def test_minimal_fix_gets_highest_responsibility(self):
        db = Database()
        db.create_table(
            "t",
            {"v": [10.0, 12.0, 11.0, 100.0], "g": [0, 0, 0, 0]},
            types={"v": "float", "g": "int"},
        )
        result = db.sql("SELECT g, avg(v) AS m FROM t GROUP BY g")
        pre = Preprocessor().run(result, [0], TooHigh(20.0))
        explanation = responsibility_explanation(pre)
        # Removing just the 100 fixes the group: responsibility 1/1.
        scores = {int(t): s for t, s in zip(explanation.tids, explanation.scores)}
        assert scores[3] == 1.0
        assert all(scores[t] < 1.0 for t in (0, 1, 2))

    def test_unfixable_group_floor_responsibility(self):
        db = Database()
        db.create_table(
            "t", {"v": [10.0, 12.0], "g": [0, 0]}, types={"v": "float", "g": "int"}
        )
        result = db.sql("SELECT g, avg(v) AS m FROM t GROUP BY g")
        pre = Preprocessor().run(result, [0], TooHigh(1.0))
        explanation = responsibility_explanation(pre)
        assert np.allclose(explanation.scores, 1.0 / 3.0)

    def test_ranking_correlates_with_influence(self, setup):
        __, __, pre = setup
        explanation = responsibility_explanation(pre)
        top = set(int(t) for t in explanation.top(10))
        influence_top = set(int(t) for t in pre.influence.ranked_tids()[:10])
        assert len(top & influence_top) >= 5
