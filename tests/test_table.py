"""Tests for repro.db.table: the column store and stable tuple ids."""

import numpy as np
import pytest

from repro.db import Column, ColumnType, Schema, Table
from repro.errors import SchemaError, TypeMismatchError


class TestConstruction:
    def test_from_columns_infers_types(self, sensors_table):
        assert sensors_table.schema.type_of("sensorid") is ColumnType.INT
        assert sensors_table.schema.type_of("temp") is ColumnType.FLOAT
        assert sensors_table.schema.type_of("room") is ColumnType.STR

    def test_from_rows(self):
        schema = Schema.of(a="int", b="str")
        table = Table.from_rows(schema, [(1, "x"), (2, "y")])
        assert table.row(1) == (2, "y")

    def test_from_dicts_with_inference(self):
        table = Table.from_dicts([{"a": 1, "b": "x"}, {"a": 2, "b": None}])
        assert table.schema.type_of("a") is ColumnType.INT
        assert table.row_dict(1) == {"a": 2, "b": None}

    def test_from_dicts_empty_needs_schema(self):
        with pytest.raises(SchemaError):
            Table.from_dicts([])

    def test_default_tids_sequential(self, sensors_table):
        assert np.asarray(sensors_table.tids).tolist() == list(range(7))

    def test_mismatched_column_lengths_rejected(self):
        with pytest.raises(SchemaError):
            Table.from_columns({"a": [1, 2], "b": [1.0]})

    def test_wrong_dtype_rejected(self):
        schema = Schema.of(a="int")
        with pytest.raises(TypeMismatchError):
            Table(schema, {"a": np.array([1.5, 2.5])})

    def test_missing_column_rejected(self):
        schema = Schema.of(a="int", b="int")
        with pytest.raises(SchemaError):
            Table(schema, {"a": np.array([1], dtype=np.int64)})

    def test_tid_count_must_match(self):
        schema = Schema.of(a="int")
        with pytest.raises(SchemaError):
            Table(
                schema,
                {"a": np.array([1, 2], dtype=np.int64)},
                tids=np.array([0], dtype=np.int64),
            )


class TestAccess:
    def test_column_is_readonly(self, sensors_table):
        column = sensors_table.column("temp")
        with pytest.raises(ValueError):
            column[0] = 0.0

    def test_tids_are_readonly(self, sensors_table):
        with pytest.raises(ValueError):
            np.asarray(sensors_table.tids)[0] = 99

    def test_getitem(self, sensors_table):
        assert sensors_table["sensorid"][0] == 1

    def test_row_returns_python_values(self, sensors_table):
        row = sensors_table.row(3)
        assert row == (2, 31, 120.0, "b")
        assert isinstance(row[0], int)
        assert isinstance(row[2], float)

    def test_iter_rows(self, sensors_table):
        rows = list(sensors_table.iter_rows())
        assert len(rows) == 7
        assert rows[0][3] == "a"

    def test_iter_dicts(self, sensors_table):
        first = next(sensors_table.iter_dicts())
        assert first["room"] == "a"


class TestTidAddressing:
    def test_position_of(self, sensors_table):
        filtered = sensors_table.filter(sensors_table["temp"] > 21)
        # Rows with temp > 21: original positions 2, 3, 4.
        assert filtered.position_of(3) == 1

    def test_positions_of_order_preserved(self, sensors_table):
        positions = sensors_table.positions_of([4, 0])
        assert positions.tolist() == [4, 0]

    def test_position_of_missing_raises(self, sensors_table):
        with pytest.raises(KeyError):
            sensors_table.position_of(99)

    def test_contains_tid(self, sensors_table):
        assert sensors_table.contains_tid(6)
        assert not sensors_table.contains_tid(7)

    def test_take_tids(self, sensors_table):
        sub = sensors_table.take_tids([5, 1])
        assert np.asarray(sub.tids).tolist() == [5, 1]
        assert sub.row(0)[2] == 19.5


class TestTransformations:
    def test_filter_preserves_tids(self, sensors_table):
        hot = sensors_table.filter(sensors_table["temp"] > 100)
        assert np.asarray(hot.tids).tolist() == [3]

    def test_filter_wrong_length_rejected(self, sensors_table):
        with pytest.raises(SchemaError):
            sensors_table.filter(np.array([True, False]))

    def test_exclude_tids(self, sensors_table):
        rest = sensors_table.exclude_tids([0, 1, 2])
        assert np.asarray(rest.tids).tolist() == [3, 4, 5, 6]

    def test_project(self, sensors_table):
        projected = sensors_table.project(["temp", "room"])
        assert projected.schema.names == ("temp", "room")
        assert len(projected) == 7
        assert np.asarray(projected.tids).tolist() == list(range(7))

    def test_with_column(self, sensors_table):
        doubled = sensors_table.with_column(
            Column("temp2", ColumnType.FLOAT),
            np.asarray(sensors_table["temp"]) * 2,
        )
        assert doubled["temp2"][3] == 240.0
        assert "temp2" not in sensors_table.schema

    def test_concat_requires_same_schema(self, sensors_table):
        other = sensors_table.project(["temp"])
        with pytest.raises(SchemaError):
            sensors_table.concat(other)

    def test_concat_keeps_tids(self, sensors_table):
        a = sensors_table.take([0, 1])
        b = sensors_table.take([5])
        combined = a.concat(b)
        assert np.asarray(combined.tids).tolist() == [0, 1, 5]
        assert len(combined) == 3

    def test_sort_by(self, sensors_table):
        by_temp = sensors_table.sort_by("temp")
        temps = np.asarray(by_temp["temp"])
        assert list(temps) == sorted(temps)

    def test_sort_by_descending(self, sensors_table):
        by_temp = sensors_table.sort_by("temp", descending=True)
        assert by_temp["temp"][0] == 120.0

    def test_sort_is_stable(self):
        table = Table.from_columns({"k": [1, 1, 1], "v": [10, 20, 30]})
        sorted_table = table.sort_by("k")
        assert np.asarray(sorted_table["v"]).tolist() == [10, 20, 30]

    def test_head(self, sensors_table):
        assert len(sensors_table.head(3)) == 3
        assert len(sensors_table.head(100)) == 7


class TestDisplay:
    def test_to_text_contains_header_and_null(self):
        table = Table.from_columns(
            {"a": [1.0, None]}, types={"a": "float"}
        )
        text = table.to_text()
        assert "a" in text
        assert "NULL" in text

    def test_to_text_truncates(self, sensors_table):
        text = sensors_table.to_text(max_rows=2)
        assert "more rows" in text

    def test_repr(self, sensors_table):
        assert "7 rows" in repr(sensors_table)
