"""Tests for the DBWipesSession state machine (the Figure-1 loop)."""

import numpy as np
import pytest

from repro.core import TooLow
from repro.errors import SessionError
from repro.frontend import Brush, DBWipesSession


@pytest.fixture
def session(donations_db):
    return DBWipesSession(donations_db)


QUERY = (
    "SELECT day, sum(amount) AS total FROM donations WHERE candidate = 'B' "
    "GROUP BY day ORDER BY day"
)


def negative_rows(result):
    totals = np.asarray(result.column("total"))
    rows = [i for i in range(result.num_rows) if totals[i] < 0]
    return rows or [int(np.argmin(totals))]


class TestStateMachine:
    def test_methods_require_execute_first(self, session):
        with pytest.raises(SessionError):
            __ = session.result
        with pytest.raises(SessionError):
            session.select_results([0])
        with pytest.raises(SessionError):
            session.current_sql()

    def test_zoom_requires_selection(self, session):
        session.execute(QUERY)
        with pytest.raises(SessionError):
            session.zoom()

    def test_select_inputs_requires_zoom(self, session):
        session.execute(QUERY)
        session.select_results([0])
        with pytest.raises(SessionError):
            session.select_inputs([0])

    def test_debug_requires_selection_and_metric(self, session):
        session.execute(QUERY)
        with pytest.raises(SessionError):
            session.debug()
        session.select_results([0])
        with pytest.raises(SessionError):
            session.debug()

    def test_error_form_requires_selection(self, session):
        session.execute(QUERY)
        with pytest.raises(SessionError):
            session.error_form()

    def test_report_requires_debug(self, session):
        session.execute(QUERY)
        with pytest.raises(SessionError):
            __ = session.report

    def test_out_of_range_selection_rejected(self, session):
        session.execute(QUERY)
        with pytest.raises(SessionError):
            session.select_results([9999])

    def test_new_query_resets_selection(self, session):
        session.execute(QUERY)
        session.select_results([0])
        session.execute(QUERY)
        assert session.selected_rows == ()


class TestSelections:
    def test_select_by_indices(self, session):
        session.execute(QUERY)
        assert session.select_results([0, 2]) == (0, 2)

    def test_select_by_brush(self, session):
        session.execute(QUERY)
        rows = session.select_results(Brush.below(0.0))
        totals = np.asarray(session.result.column("total"))
        assert all(totals[r] < 0 for r in rows)

    def test_zoom_axes_default_to_group_key_and_agg_arg(self, session):
        result = session.execute(QUERY)
        session.select_results(negative_rows(result))
        zoomed = session.zoom()
        assert zoomed.x_label == "day"
        assert zoomed.y_label == "amount"
        assert zoomed.kind == "tuples"

    def test_select_inputs_by_brush(self, session):
        result = session.execute(QUERY)
        session.select_results(negative_rows(result))
        session.zoom()
        tids = session.select_inputs(Brush.below(0.0))
        assert len(tids) > 0

    def test_select_inputs_by_tids_validated(self, session):
        result = session.execute(QUERY)
        session.select_results(negative_rows(result))
        session.zoom()
        with pytest.raises(SessionError):
            session.select_inputs([10**9])

    def test_render_highlights_selection(self, session):
        result = session.execute(QUERY)
        session.select_results(negative_rows(result))
        assert "#" in session.render()


class TestDebugAndClean:
    def _run_to_report(self, session):
        result = session.execute(QUERY)
        session.select_results(negative_rows(result))
        session.zoom()
        session.select_inputs(Brush.below(0.0))
        session.set_metric("too_low", threshold=0.0)
        return session.debug()

    def test_full_loop_produces_report(self, session):
        report = self._run_to_report(session)
        assert len(report) > 0
        assert session.report is report

    def test_snapshot_carries_stage_timing_counters(self, session):
        assert session.snapshot()["timings"] == {
            "debug_count": 0, "last": {}, "total": {},
        }
        report = self._run_to_report(session)
        timings = session.snapshot()["timings"]
        assert timings["debug_count"] == 1
        assert timings["last"] == dict(report.timings)
        assert set(timings["last"]) >= {
            "preprocess", "enumerate_datasets", "enumerate_predicates", "rank",
        }
        # A second debug accumulates the totals but replaces "last".
        session.debug()
        timings = session.snapshot()["timings"]
        assert timings["debug_count"] == 2
        for stage, total in timings["total"].items():
            assert total >= timings["last"][stage]

    def test_error_form_offers_sum_metrics(self, session):
        result = session.execute(QUERY)
        session.select_results(negative_rows(result))
        ids = [o.form_id for o in session.error_form()]
        assert "too_low" in ids

    def test_set_metric_accepts_instance(self, session):
        result = session.execute(QUERY)
        session.select_results(negative_rows(result))
        metric = session.set_metric(TooLow(0.0))
        assert metric.threshold == 0.0

    def test_set_metric_unknown_form_rejected(self, session):
        result = session.execute(QUERY)
        session.select_results(negative_rows(result))
        with pytest.raises(SessionError):
            session.set_metric("nope")

    def test_apply_predicate_rewrites_and_reexecutes(self, session):
        self._run_to_report(session)
        before = float(
            np.minimum(np.asarray(session.result.column("total")), 0).sum()
        )
        result = session.apply_predicate(0)
        after = float(np.minimum(np.asarray(result.column("total")), 0).sum())
        assert after > before  # negative mass shrank
        assert "NOT" in session.current_sql()
        assert len(session.applied_predicates) == 1

    def test_apply_clears_selection(self, session):
        self._run_to_report(session)
        session.apply_predicate(0)
        assert session.selected_rows == ()

    def test_undo_cleaning_restores_result(self, session):
        self._run_to_report(session)
        original_rows = session.result.num_rows
        original_total = float(np.asarray(session.result.column("total")).sum())
        session.apply_predicate(0)
        restored = session.undo_cleaning()
        assert restored.num_rows == original_rows
        assert float(np.asarray(restored.column("total")).sum()) == pytest.approx(
            original_total
        )

    def test_apply_bad_index_rejected(self, session):
        self._run_to_report(session)
        with pytest.raises(SessionError):
            session.apply_predicate(999)

    def test_dashboard_renders_all_panels(self, session):
        self._run_to_report(session)
        text = session.dashboard()
        assert "Query" in text
        assert "Ranked Predicates" in text

    def test_report_survives_after_selection_change(self, session):
        self._run_to_report(session)
        session.select_results([0])
        # Selecting new results invalidates the report by design.
        with pytest.raises(SessionError):
            __ = session.report
