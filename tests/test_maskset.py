"""Property harness: the batched mask engine ≡ ``Predicate.mask``.

The batched Ranker/Merger path is only byte-identical to the per-rule
reference if every engine-evaluated mask equals the reference mask
bit-for-bit. This harness drives :class:`repro.core.ClauseMaskCache`
over seeded random tables mixing numeric (int and float-with-NaN) and
categorical (string-with-NULL) columns, with random predicates covering
inclusive/exclusive/unbounded interval ends, equality intervals, and
plain/negated categorical membership — plus the 2-D grouped Δε kernels
against their per-row loop references.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ClauseMaskCache, subset_epsilon_grouped_batch
from repro.core.influence import (
    subset_epsilon_for_mask_set,
    subset_epsilon_grouped,
)
from repro.core.maskset import MaskSet, pack_mask, popcount, unpack_masks
from repro.db import Table, get_aggregate
from repro.db.predicate import CategoricalClause, NumericClause, Predicate
from repro.db.segments import SegmentedValues, SegmentPairs
from repro.core.error_metrics import TooHigh

CATEGORIES = ("a", "bb", "ccc", "dd", "e")


def _random_table(rng: np.random.Generator, n: int) -> Table:
    """A table mixing int, float-with-NaN, and string-with-NULL columns."""
    ints = rng.integers(-5, 6, n)
    floats = np.round(rng.normal(0.0, 10.0, n), 1)
    floats[rng.random(n) < 0.15] = np.nan
    cats = [
        None if rng.random() < 0.2 else str(rng.choice(CATEGORIES))
        for __ in range(n)
    ]
    return Table.from_columns(
        {"i": ints, "f": floats, "c": cats},
        types={"i": "int", "f": "float", "c": "str"},
    )


def _random_numeric_clause(rng: np.random.Generator, column: str) -> NumericClause:
    kind = rng.integers(0, 4)
    # Bounds drawn from the same value range as the data, sometimes
    # exactly on data points (rounded grid), sometimes off-grid.
    lo = float(np.round(rng.normal(0.0, 8.0), rng.integers(0, 3)))
    hi = lo + abs(float(np.round(rng.normal(0.0, 8.0), rng.integers(0, 3))))
    lo_inc = bool(rng.random() < 0.5)
    hi_inc = bool(rng.random() < 0.5)
    if kind == 0:
        return NumericClause(column, lo, None, lo_inclusive=lo_inc)
    if kind == 1:
        return NumericClause(column, None, hi, hi_inclusive=hi_inc)
    if kind == 2:
        return NumericClause(column, lo, hi, lo_inc, hi_inc)
    return NumericClause(column, lo, lo, True, True)  # equality interval


def _random_categorical_clause(
    rng: np.random.Generator, column: str
) -> CategoricalClause:
    k = int(rng.integers(1, 4))
    values = frozenset(
        str(v) for v in rng.choice(CATEGORIES, size=k, replace=False)
    )
    return CategoricalClause(column, values, negated=bool(rng.random() < 0.4))


def _random_predicate(rng: np.random.Generator) -> Predicate:
    clauses = []
    picks = rng.random(3)
    if picks[0] < 0.6:
        clauses.append(_random_numeric_clause(rng, "f"))
    if picks[1] < 0.6:
        clauses.append(_random_numeric_clause(rng, "i"))
    if picks[2] < 0.6:
        clauses.append(_random_categorical_clause(rng, "c"))
    if not clauses:
        clauses.append(_random_numeric_clause(rng, "f"))
    return Predicate(clauses)


class TestMaskParityProperty:
    def test_engine_masks_equal_reference_over_random_tables(self):
        rng = np.random.default_rng(1234)
        for round_index in range(30):
            table = _random_table(rng, int(rng.integers(1, 200)))
            engine = ClauseMaskCache()
            predicates = [_random_predicate(rng) for __ in range(25)]
            mask_set = engine.mask_set(table, predicates)
            bools = mask_set.bools()
            for row, predicate in enumerate(predicates):
                expected = predicate.mask(table)
                np.testing.assert_array_equal(
                    bools[row],
                    expected,
                    err_msg=f"round {round_index}: {predicate.describe()}",
                )
                assert mask_set.counts[row] == int(expected.sum())

    def test_true_predicate_and_empty_table(self):
        engine = ClauseMaskCache()
        table = _random_table(np.random.default_rng(7), 13)
        mask_set = engine.mask_set(table, [Predicate.true()])
        assert mask_set.counts[0] == 13
        assert mask_set.bools()[0].all()

        empty = table.filter(np.zeros(13, dtype=bool))
        empty_set = engine.mask_set(empty, [Predicate.true()])
        assert empty_set.counts[0] == 0

    def test_distinct_clauses_evaluated_once(self):
        engine = ClauseMaskCache()
        table = _random_table(np.random.default_rng(3), 50)
        shared = NumericClause("f", 0.0, None)
        predicates = [
            Predicate([shared]),
            Predicate([shared, CategoricalClause("c", frozenset(["a"]))]),
            Predicate([shared, NumericClause("i", None, 2.0)]),
        ]
        engine.mask_set(table, predicates)
        stats = engine.stats()
        assert stats["clauses"] == 3  # shared clause cached once
        assert stats["predicates"] == 3

        # A repeated evaluation is pure cache hits: no new entries.
        engine.mask_set(table, predicates)
        assert engine.stats() == stats

    def test_fallback_covers_off_fast_path_clauses(self):
        # A categorical clause over a numeric column has no code table;
        # the engine must fall back to the reference evaluator.
        engine = ClauseMaskCache()
        table = _random_table(np.random.default_rng(11), 60)
        predicate = Predicate([CategoricalClause("i", frozenset([2, 3]))])
        np.testing.assert_array_equal(
            engine.predicate_mask(table, predicate), predicate.mask(table)
        )

    def test_digests_identify_equal_masks(self):
        engine = ClauseMaskCache()
        table = _random_table(np.random.default_rng(5), 80)
        same_a = Predicate([NumericClause("f", 0.0, None)])
        # A redundant second clause: different predicate, identical mask.
        same_b = Predicate(
            [NumericClause("f", 0.0, None), NumericClause("f", -1e9, None)]
        )
        different = Predicate([NumericClause("f", None, 0.0)])
        mask_set = engine.mask_set(table, [same_a, same_b, different])
        digests = mask_set.digests()
        assert digests[0] == digests[1]
        assert digests[0] != digests[2]


class TestPackedHelpers:
    def test_pack_unpack_roundtrip_and_popcount(self):
        rng = np.random.default_rng(9)
        for n in (0, 1, 7, 8, 9, 64, 130):
            mask = rng.random(n) < 0.4
            packed = pack_mask(mask)
            np.testing.assert_array_equal(unpack_masks(packed, n)[0], mask)
            assert popcount(packed)[0] == int(mask.sum())


class TestBatchDeltaEpsilonKernels:
    @pytest.mark.parametrize(
        "agg_name", ["count", "sum", "avg", "var", "stddev", "min", "max"]
    )
    def test_compute_without_grouped_batch_matches_loop(self, agg_name):
        rng = np.random.default_rng(42)
        aggregate = get_aggregate(agg_name)
        values = rng.normal(10.0, 4.0, 300)
        values[rng.random(300) < 0.1] = np.nan
        # Ragged segments including an empty and a singleton one.
        offsets = np.array([0, 0, 1, 40, 40, 120, 300], dtype=np.int64)
        seg = SegmentedValues(values, offsets)
        masks = rng.random((17, 300)) < 0.3
        batch = aggregate.compute_without_grouped_batch(seg, masks)
        loop = aggregate.compute_without_grouped_batch_loop(seg, masks)
        np.testing.assert_array_equal(batch, loop)

    def test_subset_epsilon_grouped_batch_matches_scalar(self):
        rng = np.random.default_rng(8)
        aggregate = get_aggregate("stddev")
        metric = TooHigh(2.0)
        seg = SegmentedValues.from_arrays(
            [rng.normal(5, 2, 50), rng.normal(5, 6, 80), rng.normal(5, 1, 10)]
        )
        masks = rng.random((9, len(seg.values))) < 0.25
        batch = subset_epsilon_grouped_batch(seg, masks, aggregate, metric)
        for row in range(9):
            assert batch[row] == subset_epsilon_grouped(
                seg, masks[row], aggregate, metric
            )

    @pytest.mark.parametrize(
        "agg_name", ["count", "sum", "avg", "var", "stddev", "min", "max"]
    )
    def test_pair_kernels_match_pair_loop(self, agg_name):
        """The precomputed-statistics pair kernels ≡ rebuilding the pairs
        as a fresh segmented array and running the 1-D grouped kernel."""
        rng = np.random.default_rng(77)
        aggregate = get_aggregate(agg_name)
        values = rng.normal(3.0, 2.0, 240)
        values[rng.random(240) < 0.12] = np.nan
        seg = SegmentedValues(
            values, np.array([0, 10, 10, 60, 200, 240], dtype=np.int64)
        )
        group_idx = np.array([0, 2, 3, 3, 4], dtype=np.int64)
        lengths = seg.lengths[group_idx]
        offsets = np.concatenate([[0], np.cumsum(lengths)])
        starts = seg.offsets[:-1][group_idx]
        flat = (
            np.arange(int(lengths.sum()), dtype=np.int64)
            - np.repeat(offsets[:-1], lengths)
            + np.repeat(starts, lengths)
        )
        pairs = SegmentPairs(seg, flat, offsets, group_idx)
        mask = rng.random(len(flat)) < 0.35
        np.testing.assert_array_equal(
            aggregate.compute_without_pairs(pairs, mask),
            aggregate.compute_without_pairs_loop(pairs, mask),
        )

    def test_mask_set_epsilons_match_scalar_and_memoize(self):
        rng = np.random.default_rng(23)
        aggregate = get_aggregate("stddev")
        metric = TooHigh(1.0)
        seg = SegmentedValues.from_arrays(
            [rng.normal(0, s, 40) for s in (1.0, 3.0, 0.5, 2.0)]
        )
        n = len(seg.values)
        masks = rng.random((12, n)) < 0.2
        masks[3] = masks[0]  # duplicate masks share one scoring
        masks[7] = False     # untouched everywhere -> pure baseline
        packed = np.stack([pack_mask(row) for row in masks])
        mask_set = MaskSet(n, packed, masks.sum(axis=1))
        batched = subset_epsilon_for_mask_set(seg, mask_set, aggregate, metric)
        for row in range(12):
            assert batched[row] == subset_epsilon_grouped(
                seg, masks[row], aggregate, metric
            )
        # Second call: every digest hits the ε memo on the segments.
        cache_keys = [k for k in seg.memo if k[0] == "subset_epsilon"]
        assert len(cache_keys) == 1
        again = subset_epsilon_for_mask_set(seg, mask_set, aggregate, metric)
        np.testing.assert_array_equal(batched, again)

    def test_mask_set_epsilons_with_position_gather(self):
        """Masks over F re-ordered into segment order ≡ direct masks."""
        rng = np.random.default_rng(31)
        aggregate = get_aggregate("avg")
        metric = TooHigh(0.5)
        seg = SegmentedValues.from_arrays(
            [rng.normal(0, 1, 30), rng.normal(1, 1, 50)]
        )
        n = len(seg.values)
        positions = rng.permutation(n)  # segment order -> "F order" map
        f_order_masks = rng.random((5, n)) < 0.3
        packed = np.stack([pack_mask(row) for row in f_order_masks])
        mask_set = MaskSet(n, packed, f_order_masks.sum(axis=1))
        batched = subset_epsilon_for_mask_set(
            seg, mask_set, aggregate, metric, positions=positions
        )
        for row in range(5):
            assert batched[row] == subset_epsilon_grouped(
                seg, f_order_masks[row][positions], aggregate, metric
            )

    def test_batch_chunks_are_seamless(self):
        rng = np.random.default_rng(15)
        aggregate = get_aggregate("avg")
        metric = TooHigh(0.0)
        seg = SegmentedValues.from_arrays([rng.normal(1, 1, 64), rng.normal(2, 1, 64)])
        masks = rng.random((11, 128)) < 0.5
        full = subset_epsilon_grouped_batch(seg, masks, aggregate, metric)
        chunked = subset_epsilon_grouped_batch(
            seg, masks, aggregate, metric, max_elements=130
        )
        np.testing.assert_array_equal(full, chunked)
