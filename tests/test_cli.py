"""Tests for the conference-demo CLI shell."""

import io

import numpy as np
import pytest

from repro.cli import BOOTSTRAP_QUERIES, SCRIPTS, DemoShell, load_dataset, main
from repro.db import Database
from repro.errors import ReproError
from repro.frontend import Brush


@pytest.fixture
def shell(donations_db):
    out = io.StringIO()
    shell = DemoShell(donations_db, out=out)
    return shell, out


QUERY = (
    "sql SELECT day, sum(amount) AS total FROM donations GROUP BY day "
    "ORDER BY day"
)


class TestShellCommands:
    def test_sql_and_show(self, shell):
        sh, out = shell
        sh.run_line(QUERY)
        sh.run_line("show")
        text = out.getvalue()
        assert "rows" in text
        assert "x: day" in text

    def test_full_loop_via_commands(self, shell):
        sh, out = shell
        sh.run([
            QUERY,
            "select y< 0",
            "zoom",
            "inputs y< 0",
            "forms",
            "metric too_low 0",
            "debug",
            "apply 1",
            "query",
        ], echo=False)
        text = out.getvalue()
        assert "suspicious results" in text
        assert "Ranked predicates" in text
        assert "applied: NOT" in text
        assert "NOT" in sh.session.current_sql()

    def test_undo_redo(self, shell):
        sh, out = shell
        sh.run([
            QUERY, "select y< 0", "zoom", "inputs y< 0",
            "metric too_low 0", "debug", "apply 1", "undo", "redo",
        ], echo=False)
        assert len(sh.session.applied_predicates) == 1
        assert "undone" in out.getvalue()
        assert "redone" in out.getvalue()

    def test_row_selection(self, shell):
        sh, out = shell
        sh.run_line(QUERY)
        sh.run_line("select row 0 1 2")
        assert sh.session.selected_rows == (0, 1, 2)

    def test_unknown_command_reports(self, shell):
        sh, out = shell
        assert sh.run_line("frobnicate") is True
        assert "unknown command" in out.getvalue()

    def test_errors_are_caught_not_raised(self, shell):
        sh, out = shell
        sh.run_line("zoom")  # out of order
        assert "error:" in out.getvalue()

    def test_quit_stops(self, shell):
        sh, __ = shell
        assert sh.run_line("quit") is False

    def test_comments_and_blank_lines_ignored(self, shell):
        sh, out = shell
        assert sh.run_line("") is True
        assert sh.run_line("# a comment") is True
        assert out.getvalue() == ""

    def test_parse_brush_forms(self):
        brush, rest = DemoShell._parse_brush(["y>", "5", "std"])
        assert isinstance(brush, Brush) and rest == ["std"]
        brush, __ = DemoShell._parse_brush(["y<", "0"])
        assert brush.y1 == 0
        brush, __ = DemoShell._parse_brush(["x=", "3"])
        assert brush.x0 == brush.x1 == 3
        rows, __ = DemoShell._parse_brush(["row", "1", "2"])
        assert rows == [1, 2]
        with pytest.raises(ReproError):
            DemoShell._parse_brush([])
        with pytest.raises(ReproError):
            DemoShell._parse_brush(["nonsense"])

    def test_repl_reads_until_quit(self, shell):
        sh, out = shell
        stdin = io.StringIO(QUERY + "\nquit\n")
        sh.repl(stdin=stdin)
        assert "rows" in out.getvalue()


class TestDatasetsAndMain:
    def test_load_dataset_names(self):
        assert "contributions" in load_dataset("fec").table_names
        assert "readings" in load_dataset("intel").table_names
        with pytest.raises(ReproError):
            load_dataset("nope")

    def test_bootstrap_queries_parse(self):
        for name, query in BOOTSTRAP_QUERIES.items():
            db = load_dataset(name)
            result = db.sql(query)
            assert result.num_rows > 0

    def test_scripts_reference_known_commands(self):
        known = {"sql", "show", "select", "zoom", "inputs", "forms",
                 "metric", "debug", "apply", "undo", "redo", "query"}
        for script in SCRIPTS.values():
            for line in script:
                assert line.split()[0] in known

    def test_main_help(self, capsys):
        assert main(["--help"]) == 0
        out = capsys.readouterr().out.lower()
        assert "demo" in out and "sql" in out

    def test_main_unknown_dataset(self, capsys):
        assert main(["mars"]) == 2

    def test_main_scripted_fec(self, capsys):
        assert main(["fec", "--script"]) == 0
        out = capsys.readouterr().out
        assert "Ranked predicates" in out
        assert "applied: NOT" in out
