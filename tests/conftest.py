"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.db import Database, Table


@pytest.fixture
def sensors_table() -> Table:
    """A tiny, hand-checkable sensor table (7 rows, mixed types)."""
    return Table.from_columns(
        {
            "sensorid": [1, 1, 2, 2, 2, 3, 3],
            "time": [0, 35, 0, 31, 62, 5, 40],
            "temp": [20.0, 21.0, 22.0, 120.0, 23.0, 19.5, 20.5],
            "room": ["a", "a", "b", "b", "b", "a", "a"],
        },
        types={"sensorid": "int", "time": "int", "temp": "float", "room": "str"},
        name="sensors",
    )


@pytest.fixture
def sensors_db(sensors_table) -> Database:
    """A database holding the tiny sensor table."""
    db = Database()
    db.register(sensors_table)
    return db


@pytest.fixture
def donations_db() -> Database:
    """A small donations table with a planted negative-memo anomaly."""
    rng = np.random.default_rng(42)
    n = 300
    days = rng.integers(0, 30, n)
    amounts = np.round(rng.lognormal(4.0, 0.8, n), 2)
    memos = np.array([""] * n, dtype=object)
    candidates = np.array(
        ["A" if v < 0.5 else "B" for v in rng.random(n)], dtype=object
    )
    # Anomaly: 12 negative donations to B on days 14-16 with a memo.
    bad = rng.choice(np.flatnonzero(candidates == "B"), 12, replace=False)
    amounts[bad] = -np.round(rng.uniform(500, 2000, 12), 2)
    memos[bad] = "REATTRIBUTION TO SPOUSE"
    days[bad] = rng.integers(14, 17, 12)
    db = Database()
    db.create_table(
        "donations",
        {
            "candidate": list(candidates),
            "amount": amounts,
            "day": days,
            "memo": list(memos),
        },
        types={"candidate": "str", "amount": "float", "day": "int", "memo": "str"},
    )
    return db


@pytest.fixture
def separable_table() -> tuple[Table, np.ndarray]:
    """A 400-row table where `temp > 90` iff `sensor == 3` (plus voltage cue)."""
    rng = np.random.default_rng(0)
    n = 400
    sensor = rng.integers(1, 10, n)
    volt = np.where(sensor == 3, rng.uniform(2.0, 2.3, n), rng.uniform(2.5, 3.0, n))
    temp = np.where(sensor == 3, rng.uniform(100, 130, n), rng.uniform(15, 30, n))
    room = np.array(["lab" if s % 2 else "office" for s in sensor], dtype=object)
    table = Table.from_columns(
        {
            "sensorid": sensor,
            "voltage": volt,
            "temp": temp,
            "room": list(room),
        },
        types={"sensorid": "int", "voltage": "float", "temp": "float", "room": "str"},
    )
    return table, temp > 90
