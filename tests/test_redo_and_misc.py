"""Tests for redo support and assorted public-API details."""

import numpy as np
import pytest

from repro.db import equals, parse_select
from repro.errors import SessionError
from repro.frontend import Brush, DBWipesSession, QueryRewriter


class TestRewriterRedo:
    STATEMENT = parse_select("SELECT day, sum(amount) AS t FROM c GROUP BY day")

    def test_undo_then_redo_restores(self):
        rewriter = QueryRewriter(self.STATEMENT)
        predicate = equals("memo", "BAD")
        applied = rewriter.apply(predicate)
        rewriter.undo()
        assert not rewriter.applied
        redone = rewriter.redo()
        assert redone == applied
        assert rewriter.applied == (predicate,)

    def test_apply_clears_redo_stack(self):
        rewriter = QueryRewriter(self.STATEMENT)
        rewriter.apply(equals("memo", "A"))
        rewriter.undo()
        assert rewriter.can_redo
        rewriter.apply(equals("memo", "B"))
        assert not rewriter.can_redo
        with pytest.raises(SessionError):
            rewriter.redo()

    def test_redo_without_undo_rejected(self):
        rewriter = QueryRewriter(self.STATEMENT)
        with pytest.raises(SessionError):
            rewriter.redo()

    def test_multi_level_undo_redo(self):
        rewriter = QueryRewriter(self.STATEMENT)
        a, b = equals("memo", "A"), equals("memo", "B")
        rewriter.apply(a)
        rewriter.apply(b)
        rewriter.undo()
        rewriter.undo()
        rewriter.redo()
        assert rewriter.applied == (a,)
        rewriter.redo()
        assert rewriter.applied == (a, b)

    def test_reset_clears_redo(self):
        rewriter = QueryRewriter(self.STATEMENT)
        rewriter.apply(equals("memo", "A"))
        rewriter.undo()
        rewriter.reset()
        assert not rewriter.can_redo


class TestSessionRedo:
    def test_session_redo_roundtrip(self, donations_db):
        session = DBWipesSession(donations_db)
        session.execute(
            "SELECT day, sum(amount) AS total FROM donations GROUP BY day "
            "ORDER BY day"
        )
        totals = np.asarray(session.result.column("total"))
        rows = [i for i in range(session.result.num_rows) if totals[i] < 0] or [
            int(np.argmin(totals))
        ]
        session.select_results(rows)
        session.zoom()
        session.select_inputs(Brush.below(0.0))
        session.set_metric("too_low", threshold=0.0)
        session.debug()
        cleaned = session.apply_predicate(0)
        cleaned_rows = list(cleaned.iter_rows())
        session.undo_cleaning()
        redone = session.redo_cleaning()
        assert list(redone.iter_rows()) == cleaned_rows
        assert len(session.applied_predicates) == 1

    def test_session_redo_requires_execute(self, donations_db):
        session = DBWipesSession(donations_db)
        with pytest.raises(SessionError):
            session.redo_cleaning()


class TestPublicApiSurface:
    def test_top_level_exports(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_subpackage_exports(self):
        import repro.baselines
        import repro.core
        import repro.data
        import repro.db
        import repro.frontend
        import repro.learn

        for module in (repro.core, repro.data, repro.db, repro.frontend,
                       repro.learn, repro.baselines):
            for name in module.__all__:
                assert getattr(module, name, None) is not None, (
                    f"{module.__name__}.{name}"
                )

    def test_version_string(self):
        import repro

        parts = repro.__version__.split(".")
        assert len(parts) == 3
