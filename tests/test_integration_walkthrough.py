"""Figure-level integration tests: the paper's walkthroughs end to end.

These assert the *shapes* DESIGN.md commits to for each figure:

* F4  — a few windows exhibit stddev far above typical; zooming exposes
  tuples above 100°F from few sensors.
* F6  — ranked predicates implicate the failing sensors / low voltage and
  applying the top one drives ε to ~0.
* F7  — FEC daily totals show a negative spike; the top predicate is the
  REATTRIBUTION memo; applying it removes the negative mass.
"""

import numpy as np
import pytest

from repro.data import (
    FECConfig,
    IntelConfig,
    REATTRIBUTION_MEMO,
    generate_fec,
    generate_intel,
    walkthrough_query,
)
from repro.db import Database
from repro.frontend import Brush, DBWipesSession


@pytest.fixture(scope="module")
def intel_session():
    table, truth = generate_intel(
        IntelConfig(duration_minutes=480, interval_minutes=2.0, n_sensors=30,
                    failing_sensors=(15, 18), failure_onset_frac=0.75)
    )
    db = Database()
    db.register(table)
    session = DBWipesSession(db)
    session.execute(
        "SELECT minute / 30 AS w, avg(temp) AS avg_temp, stddev(temp) AS std_temp "
        "FROM readings GROUP BY minute / 30 ORDER BY w"
    )
    return session, truth


@pytest.fixture(scope="module")
def fec_session():
    table, truth = generate_fec(FECConfig())
    db = Database()
    db.register(table)
    session = DBWipesSession(db)
    session.execute(walkthrough_query("MCCAIN"))
    return session, truth


class TestFigure4SensorWindows:
    def test_high_stddev_windows_exist_and_are_minority(self, intel_session):
        session, __ = intel_session
        std = np.asarray(session.result.column("std_temp"))
        typical = float(np.median(std))
        high = std > 4 * typical
        assert 0 < high.sum() < len(std) / 2

    def test_zoom_exposes_100_degree_tuples(self, intel_session):
        session, truth = intel_session
        std = np.asarray(session.result.column("std_temp"))
        session.select_results(Brush.above(4 * float(np.median(std))), y="std_temp")
        zoomed = session.zoom()
        hot = zoomed.y > 100.0
        assert hot.sum() > 0
        # The hot tuples come from exactly the failing sensors.
        hot_tids = zoomed.keys[hot]
        labels = set(int(t) for t in truth.tids)
        assert all(int(t) in labels for t in hot_tids)


class TestFigure6RankedPredicates:
    def test_top_predicate_fixes_error_and_names_cause(self, intel_session):
        session, truth = intel_session
        std = np.asarray(session.result.column("std_temp"))
        session.select_results(Brush.above(4 * float(np.median(std))), y="std_temp")
        session.zoom()
        session.select_inputs(Brush.above(100.0))
        session.set_metric("too_high", agg_name="std_temp")
        report = session.debug()
        assert len(report) >= 3
        best = report.best
        assert best.relative_error_reduction > 0.95
        mentioned = set()
        for ranked in report.top(8):
            mentioned |= ranked.predicate.columns()
        # The panel collectively implicates the physical signals.
        assert {"temp", "voltage"} & mentioned

    def test_applying_top_predicate_restores_normal_stddev(self, intel_session):
        session, __ = intel_session
        std = np.asarray(session.result.column("std_temp"))
        cutoff = 4 * float(np.median(std))
        session.select_results(Brush.above(cutoff), y="std_temp")
        session.zoom()
        session.select_inputs(Brush.above(100.0))
        session.set_metric("too_high", agg_name="std_temp")
        session.debug()
        result = session.apply_predicate(0)
        new_std = np.asarray(result.column("std_temp"))
        assert new_std.max() <= cutoff
        session.undo_cleaning()


class TestFigure7FECSpike:
    def test_negative_spike_visible(self, fec_session):
        session, __ = fec_session
        totals = np.asarray(session.result.column("total"))
        assert totals.min() < 0
        assert (totals < 0).sum() <= 10  # localized dip, not global

    def test_reattribution_predicate_in_top_ranks(self, fec_session):
        session, truth = fec_session
        session.select_results(Brush.below(0.0))
        session.zoom()
        session.select_inputs(Brush.below(0.0))
        session.set_metric("too_low", threshold=0.0)
        report = session.debug()
        # The memo description must be among the top predicates and fully
        # fix the error (the walkthrough's "one of which includes several
        # references to the memo attribute").
        top = report.top(5)
        memo_entries = [
            r for r in top if REATTRIBUTION_MEMO in r.predicate.to_sql()
        ]
        assert memo_entries
        assert memo_entries[0].relative_error_reduction > 0.95

    def test_clicking_removes_negative_mass(self, fec_session):
        session, __ = fec_session
        totals_before = np.asarray(session.result.column("total"))
        negative_before = float(np.minimum(totals_before, 0).sum())
        session.select_results(Brush.below(0.0))
        session.zoom()
        session.select_inputs(Brush.below(0.0))
        session.set_metric("too_low", threshold=0.0)
        session.debug()
        result = session.apply_predicate(0)
        totals_after = np.asarray(result.column("total"))
        negative_after = float(np.minimum(totals_after, 0).sum())
        # "A significant fraction of the negative value disappears."
        assert negative_after > 0.1 * negative_before
        assert "NOT" in session.current_sql()
        session.undo_cleaning()

    def test_dashboard_story(self, fec_session):
        session, __ = fec_session
        text = session.dashboard()
        assert "sum(amount)" in text
