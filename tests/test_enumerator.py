"""Tests for the Dataset Enumerator (D' cleaning + candidate generation)."""

import numpy as np
import pytest

from repro.core import DatasetEnumerator, Preprocessor, TooHigh
from repro.core.enumerator import CandidateSet
from repro.db import Database, Table
from repro.errors import PipelineError
from repro.learn.rules import Rule
from repro.db.predicate import equals


@pytest.fixture
def anomaly_setup():
    """60 normal readings + 15 anomalous ones from sensor 9, one group."""
    rng = np.random.default_rng(11)
    n = 75
    sensor = np.concatenate([rng.integers(1, 6, 60), np.full(15, 9)])
    temp = np.concatenate([rng.uniform(18, 24, 60), rng.uniform(100, 120, 15)])
    volt = np.concatenate([rng.uniform(2.6, 3.0, 60), rng.uniform(2.0, 2.3, 15)])
    db = Database()
    db.create_table(
        "r",
        {"sensorid": sensor, "temp": temp, "voltage": volt, "g": np.zeros(n, dtype=np.int64)},
        types={"sensorid": "int", "temp": "float", "voltage": "float", "g": "int"},
    )
    result = db.sql("SELECT g, avg(temp) AS m FROM r GROUP BY g")
    pre = Preprocessor().run(result, [0], TooHigh(30.0))
    bad_tids = np.arange(60, 75)
    return pre, bad_tids


class TestCleaning:
    def test_kmeans_cleaning_drops_stray_examples(self, anomaly_setup):
        pre, bad_tids = anomaly_setup
        # User accidentally brushed 3 normal tuples along with 15 bad ones.
        dprime = np.concatenate([bad_tids, np.array([0, 1, 2])])
        enumerator = DatasetEnumerator(clean_strategy="kmeans")
        cleaned = enumerator.clean_dprime(pre.F, dprime)
        assert set(cleaned.tolist()) == set(bad_tids.tolist())

    def test_none_strategy_keeps_everything(self, anomaly_setup):
        pre, bad_tids = anomaly_setup
        dprime = np.concatenate([bad_tids, np.array([0])])
        enumerator = DatasetEnumerator(clean_strategy="none")
        cleaned = enumerator.clean_dprime(pre.F, dprime)
        assert len(cleaned) == len(dprime)

    def test_nb_cleaning_runs(self, anomaly_setup):
        pre, bad_tids = anomaly_setup
        dprime = np.concatenate([bad_tids, np.array([0, 1])])
        enumerator = DatasetEnumerator(clean_strategy="nb")
        cleaned = enumerator.clean_dprime(pre.F, dprime)
        assert len(cleaned) >= len(bad_tids) * 0.5

    def test_small_dprime_never_cleaned(self, anomaly_setup):
        pre, __ = anomaly_setup
        dprime = np.array([60, 61, 62])
        enumerator = DatasetEnumerator(clean_strategy="kmeans")
        assert len(enumerator.clean_dprime(pre.F, dprime)) == 3

    def test_invalid_strategy_rejected(self):
        with pytest.raises(PipelineError):
            DatasetEnumerator(clean_strategy="magic")


class TestCandidates:
    def test_with_dprime_produces_dprime_candidate(self, anomaly_setup):
        pre, bad_tids = anomaly_setup
        candidates = DatasetEnumerator().run(pre, bad_tids)
        assert candidates
        assert candidates[0].origin == "dprime"
        assert set(candidates[0].tids.tolist()) == set(bad_tids.tolist())

    def test_without_dprime_falls_back_to_influence(self, anomaly_setup):
        pre, bad_tids = anomaly_setup
        candidates = DatasetEnumerator().run(pre, ())
        assert candidates
        assert any("influence" in c.origin for c in candidates)
        # The highest-quantile influence candidate should be mostly bad tuples.
        best = candidates[0]
        overlap = len(set(best.tids.tolist()) & set(bad_tids.tolist()))
        assert overlap / len(best.tids) > 0.8

    def test_subgroup_candidates_attached_rules(self, anomaly_setup):
        pre, bad_tids = anomaly_setup
        candidates = DatasetEnumerator().run(pre, bad_tids)
        with_rules = [c for c in candidates if c.rules]
        assert with_rules  # subgroup discovery found descriptions

    def test_stray_dprime_tids_ignored(self, anomaly_setup):
        pre, bad_tids = anomaly_setup
        dprime = np.concatenate([bad_tids, np.array([99999])])
        candidates = DatasetEnumerator().run(pre, dprime)
        assert 99999 not in candidates[0].tids.tolist()

    def test_max_candidates_cap(self, anomaly_setup):
        pre, bad_tids = anomaly_setup
        candidates = DatasetEnumerator(max_candidates=2).run(pre, bad_tids)
        assert len(candidates) <= 2

    def test_extend_disabled_skips_subgroups(self, anomaly_setup):
        pre, bad_tids = anomaly_setup
        candidates = DatasetEnumerator(extend=False).run(pre, bad_tids)
        assert all(not c.rules for c in candidates)

    def test_dedupe_merges_rules_for_identical_sets(self):
        table = Table.from_columns({"x": [1.0, 2.0]})
        tids = np.array([0, 1])
        rule_a = Rule(predicate=equals("x", 1.0), source="a")
        rule_b = Rule(predicate=equals("x", 2.0), source="b")
        merged = DatasetEnumerator._dedupe(
            [
                CandidateSet(tids=tids, origin="one", rules=(rule_a,)),
                CandidateSet(tids=tids, origin="two", rules=(rule_b,)),
            ]
        )
        assert len(merged) == 1
        assert set(r.source for r in merged[0].rules) == {"a", "b"}

    def test_label_mask(self, anomaly_setup):
        pre, bad_tids = anomaly_setup
        candidate = CandidateSet(tids=bad_tids, origin="test")
        mask = candidate.label_mask(pre.F)
        assert int(mask.sum()) == len(bad_tids)

    def test_label_mask_parity_with_per_row_loop(self, anomaly_setup):
        """The np.isin vectorization matches the original set-lookup loop."""
        pre, bad_tids = anomaly_setup
        rng = np.random.default_rng(3)
        cases = [
            bad_tids,
            np.empty(0, dtype=np.int64),
            np.array([int(pre.F.tids[0])]),
            np.array([99999, -1]),  # tids absent from F
            rng.choice(np.asarray(pre.F.tids), size=7, replace=False),
        ]
        for tids in cases:
            candidate = CandidateSet(tids=np.asarray(tids, dtype=np.int64),
                                     origin="parity")
            vectorized = candidate.label_mask(pre.F)
            tid_set = set(int(t) for t in tids)
            loop = np.fromiter(
                (int(t) in tid_set for t in np.asarray(pre.F.tids)),
                dtype=bool,
                count=len(pre.F),
            )
            np.testing.assert_array_equal(vectorized, loop)
        empty = Table.from_columns({"x": np.empty(0, dtype=np.float64)})
        assert CandidateSet(
            tids=bad_tids, origin="parity"
        ).label_mask(empty).shape == (0,)
