"""Tests for the error metric family ε(S)."""

import numpy as np
import pytest

from repro.core import (
    DiffFromConstant,
    NotEqual,
    TooHigh,
    TooLow,
    available_metric_ids,
    metric_from_form,
)
from repro.errors import PipelineError


class TestTooHigh:
    def test_zero_when_under_threshold(self):
        assert TooHigh(100)(np.array([50.0, 99.0])) == 0.0

    def test_max_excess(self):
        assert TooHigh(100)(np.array([120.0, 150.0, 80.0])) == 50.0

    def test_matches_paper_diff_definition(self):
        # diff(S) = max(0, max_{s in S}(s - c))
        values = np.array([95.0, 130.0, 110.0])
        c = 100.0
        expected = max(0.0, max(values) - c)
        assert DiffFromConstant(c)(values) == expected

    def test_sum_combine(self):
        metric = TooHigh(100, combine="sum")
        assert metric(np.array([120.0, 150.0, 80.0])) == 70.0

    def test_nan_values_contribute_zero(self):
        assert TooHigh(100)(np.array([np.nan, 90.0])) == 0.0
        assert TooHigh(100)(np.array([np.nan, 120.0])) == 20.0

    def test_empty_selection_zero(self):
        assert TooHigh(100)(np.array([])) == 0.0

    def test_direction(self):
        assert TooHigh(0).direction == +1


class TestTooLow:
    def test_max_shortfall(self):
        assert TooLow(0)(np.array([-500.0, 10.0, -100.0])) == 500.0

    def test_zero_when_above(self):
        assert TooLow(0)(np.array([1.0, 2.0])) == 0.0

    def test_direction(self):
        assert TooLow(0).direction == -1


class TestNotEqual:
    def test_max_distance(self):
        assert NotEqual(10)(np.array([7.0, 15.0])) == 5.0

    def test_exact_is_zero(self):
        assert NotEqual(10)(np.array([10.0, 10.0])) == 0.0

    def test_direction_neutral(self):
        assert NotEqual(0).direction == 0


class TestFormRegistry:
    def test_available_ids(self):
        ids = available_metric_ids()
        assert set(ids) >= {"too_high", "too_low", "not_equal", "diff"}

    def test_build_from_form(self):
        metric = metric_from_form("too_high", threshold=42.0)
        assert isinstance(metric, TooHigh)
        assert metric.threshold == 42.0

    def test_unknown_form_rejected(self):
        with pytest.raises(PipelineError):
            metric_from_form("nope")

    def test_bad_combine_rejected(self):
        with pytest.raises(PipelineError):
            TooHigh(1, combine="median")

    def test_describe_mentions_threshold(self):
        assert "100" in TooHigh(100).describe()
        assert "5" in NotEqual(5).describe()
