"""Tests for repro.db.expr: vectorized evaluation and SQL rendering."""

import numpy as np
import pytest

from repro.db import ColumnType, Schema, Table
from repro.db.expr import (
    And,
    Arithmetic,
    Between,
    ColumnRef,
    Comparison,
    FuncCall,
    InList,
    IsNull,
    Like,
    Literal,
    Negate,
    Not,
    Or,
    conjoin,
    sql_literal,
)
from repro.errors import ExecutionError, TypeMismatchError


@pytest.fixture
def table():
    return Table.from_columns(
        {
            "i": [10, 20, 30, 40],
            "f": [1.5, None, 3.5, -2.0],
            "s": ["foo", "bar", None, "foobar"],
        },
        types={"i": "int", "f": "float", "s": "str"},
    )


SCHEMA = Schema.of(i="int", f="float", s="str")


class TestColumnRefAndLiteral:
    def test_column_eval(self, table):
        assert ColumnRef("i").eval(table).tolist() == [10, 20, 30, 40]

    def test_literal_broadcast(self, table):
        out = Literal(7).eval(table)
        assert out.tolist() == [7, 7, 7, 7]
        assert out.dtype == np.int64

    def test_string_literal_broadcast(self, table):
        out = Literal("x").eval(table)
        assert out.dtype == object
        assert out[2] == "x"

    def test_null_literal_is_nan(self, table):
        assert np.isnan(Literal(None).eval(table)).all()

    def test_result_types(self):
        assert ColumnRef("f").result_type(SCHEMA) is ColumnType.FLOAT
        assert Literal(1).result_type(SCHEMA) is ColumnType.INT
        assert Literal(True).result_type(SCHEMA) is ColumnType.BOOL
        assert Literal("a").result_type(SCHEMA) is ColumnType.STR


class TestArithmetic:
    def test_add(self, table):
        out = (ColumnRef("i") + Literal(1)).eval(table)
        assert out.tolist() == [11, 21, 31, 41]

    def test_int_division_is_postgres_style(self, table):
        out = (ColumnRef("i") / Literal(7)).eval(table)
        assert out.tolist() == [1, 2, 4, 5]
        assert out.dtype.kind == "i"

    def test_int_division_truncates_toward_zero(self):
        table = Table.from_columns({"a": [-7, 7, -8]}, types={"a": "int"})
        out = (ColumnRef("a") / Literal(2)).eval(table)
        assert out.tolist() == [-3, 3, -4]

    def test_float_division(self, table):
        out = (ColumnRef("i") / Literal(8.0)).eval(table)
        assert out[0] == pytest.approx(1.25)

    def test_division_by_zero_int_raises(self, table):
        with pytest.raises(ExecutionError):
            (ColumnRef("i") / Literal(0)).eval(table)

    def test_division_by_zero_float_is_nan_or_inf(self, table):
        out = (ColumnRef("i") / Literal(0.0)).eval(table)
        assert np.isinf(out).all()

    def test_modulo(self, table):
        out = (ColumnRef("i") % Literal(7)).eval(table)
        assert out.tolist() == [3, 6, 2, 5]

    def test_modulo_by_zero_raises(self, table):
        with pytest.raises(ExecutionError):
            (ColumnRef("i") % Literal(0)).eval(table)

    def test_string_arithmetic_rejected(self, table):
        with pytest.raises(TypeMismatchError):
            (ColumnRef("s") + Literal(1)).eval(table)

    def test_result_type_promotion(self):
        expr = ColumnRef("i") + ColumnRef("f")
        assert expr.result_type(SCHEMA) is ColumnType.FLOAT
        expr2 = ColumnRef("i") + Literal(1)
        assert expr2.result_type(SCHEMA) is ColumnType.INT

    def test_negate(self, table):
        out = Negate(ColumnRef("i")).eval(table)
        assert out.tolist() == [-10, -20, -30, -40]


class TestComparison:
    def test_numeric_comparison(self, table):
        out = ColumnRef("i").gt(Literal(20)).eval(table)
        assert out.tolist() == [False, False, True, True]

    def test_nan_compares_false_even_not_equal(self, table):
        out = ColumnRef("f").ne(Literal(1.5)).eval(table)
        # Row 1 is NULL -> False (conservative filtering).
        assert out.tolist() == [False, False, True, True]

    def test_string_equality(self, table):
        out = ColumnRef("s").eq(Literal("foo")).eval(table)
        assert out.tolist() == [True, False, False, False]

    def test_none_string_compares_false(self, table):
        out = ColumnRef("s").ne(Literal("zzz")).eval(table)
        assert out.tolist() == [True, True, False, True]

    def test_string_ordering(self, table):
        out = ColumnRef("s").lt(Literal("fz")).eval(table)
        assert out.tolist() == [True, True, False, True]

    def test_mixed_type_comparison_rejected(self, table):
        with pytest.raises(TypeMismatchError):
            ColumnRef("s").eq(Literal(1)).eval(table)

    def test_diamond_alias(self):
        comparison = Comparison("<>", ColumnRef("i"), Literal(1))
        assert comparison.op == "!="


class TestBooleanOps:
    def test_and(self, table):
        expr = And([ColumnRef("i").gt(Literal(10)), ColumnRef("i").lt(Literal(40))])
        assert expr.eval(table).tolist() == [False, True, True, False]

    def test_or(self, table):
        expr = Or([ColumnRef("i").le(Literal(10)), ColumnRef("i").ge(Literal(40))])
        assert expr.eval(table).tolist() == [True, False, False, True]

    def test_not(self, table):
        expr = Not(ColumnRef("i").gt(Literal(20)))
        assert expr.eval(table).tolist() == [True, True, False, False]

    def test_logical_on_non_boolean_rejected(self, table):
        with pytest.raises(TypeMismatchError):
            And([ColumnRef("i"), ColumnRef("i")]).eval(table)

    def test_conjoin_flattens(self):
        a = ColumnRef("i").gt(Literal(1))
        b = ColumnRef("i").lt(Literal(5))
        c = ColumnRef("f").gt(Literal(0))
        nested = conjoin([And([a, b]), c])
        assert isinstance(nested, And)
        assert len(nested.operands) == 3

    def test_conjoin_empty_is_true(self, table):
        expr = conjoin([])
        assert expr.eval(table).all()

    def test_conjoin_single_passthrough(self):
        a = ColumnRef("i").gt(Literal(1))
        assert conjoin([a]) is a


class TestMembershipAndPatterns:
    def test_in_list_numeric(self, table):
        expr = ColumnRef("i").isin([10, 40])
        assert expr.eval(table).tolist() == [True, False, False, True]

    def test_in_list_string_none_safe(self, table):
        expr = ColumnRef("s").isin(["foo", "bar"])
        assert expr.eval(table).tolist() == [True, True, False, False]

    def test_not_in(self, table):
        expr = InList(ColumnRef("i"), [10], negated=True)
        assert expr.eval(table).tolist() == [False, True, True, True]

    def test_between_inclusive(self, table):
        expr = ColumnRef("i").between(20, 30)
        assert expr.eval(table).tolist() == [False, True, True, False]

    def test_between_nan_false(self, table):
        expr = ColumnRef("f").between(-10, 10)
        assert expr.eval(table).tolist() == [True, False, True, True]

    def test_like_percent(self, table):
        expr = Like(ColumnRef("s"), "foo%")
        assert expr.eval(table).tolist() == [True, False, False, True]

    def test_like_underscore(self, table):
        expr = Like(ColumnRef("s"), "b_r")
        assert expr.eval(table).tolist() == [False, True, False, False]

    def test_like_escapes_regex_metachars(self):
        table = Table.from_columns({"s": ["a.c", "abc"]}, types={"s": "str"})
        expr = Like(ColumnRef("s"), "a.c")
        assert expr.eval(table).tolist() == [True, False]

    def test_like_on_numeric_rejected(self, table):
        with pytest.raises(TypeMismatchError):
            Like(ColumnRef("i"), "1%").eval(table)

    def test_is_null_float(self, table):
        assert IsNull(ColumnRef("f")).eval(table).tolist() == [
            False, True, False, False,
        ]

    def test_is_null_string(self, table):
        assert IsNull(ColumnRef("s")).eval(table).tolist() == [
            False, False, True, False,
        ]

    def test_is_not_null(self, table):
        out = IsNull(ColumnRef("i"), negated=True).eval(table)
        assert out.all()


class TestFuncCall:
    def test_abs(self, table):
        out = FuncCall("abs", [ColumnRef("f")]).eval(table)
        assert out[3] == 2.0

    def test_lower_upper(self, table):
        out = FuncCall("upper", [ColumnRef("s")]).eval(table)
        assert out[0] == "FOO"
        assert out[2] is None

    def test_length_none_is_zero(self, table):
        out = FuncCall("length", [ColumnRef("s")]).eval(table)
        assert out.tolist() == [3, 3, 0, 6]

    def test_unknown_function_rejected(self):
        with pytest.raises(TypeMismatchError):
            FuncCall("nope", [ColumnRef("i")])

    def test_floor_ceil_sign(self, table):
        assert FuncCall("floor", [ColumnRef("f")]).eval(table)[0] == 1.0
        assert FuncCall("ceil", [ColumnRef("f")]).eval(table)[0] == 2.0
        assert FuncCall("sign", [ColumnRef("f")]).eval(table)[3] == -1.0


class TestSqlRendering:
    def test_sql_literal_escapes_quotes(self):
        assert sql_literal("O'Brien") == "'O''Brien'"

    def test_sql_literal_null_and_bool(self):
        assert sql_literal(None) == "NULL"
        assert sql_literal(True) == "TRUE"

    def test_expression_to_sql(self):
        expr = And([
            Comparison(">", ColumnRef("temp"), Literal(100)),
            Like(ColumnRef("memo"), "%SPOUSE%"),
        ])
        sql = expr.to_sql()
        assert "temp > 100" in sql
        assert "LIKE '%SPOUSE%'" in sql

    def test_columns_collection(self):
        expr = Or([
            ColumnRef("a").gt(ColumnRef("b")),
            Between(ColumnRef("c"), Literal(1), Literal(2)),
        ])
        assert expr.columns() == {"a", "b", "c"}

    def test_equality_and_hash(self):
        e1 = ColumnRef("a").gt(Literal(1))
        e2 = ColumnRef("a").gt(Literal(1))
        assert e1 == e2
        assert hash(e1) == hash(e2)
        assert e1 != ColumnRef("a").gt(Literal(2))
