"""Tests for repro.db.schema."""

import pytest

from repro.db import Column, ColumnType, Schema
from repro.errors import SchemaError, UnknownColumnError


class TestColumn:
    def test_valid_names(self):
        Column("a", ColumnType.INT)
        Column("snake_case_name", ColumnType.STR)

    def test_rejects_empty_name(self):
        with pytest.raises(SchemaError):
            Column("", ColumnType.INT)

    def test_rejects_leading_digit(self):
        with pytest.raises(SchemaError):
            Column("1abc", ColumnType.INT)

    def test_rejects_spaces(self):
        with pytest.raises(SchemaError):
            Column("a b", ColumnType.INT)

    def test_str_rendering(self):
        assert str(Column("temp", ColumnType.FLOAT)) == "temp FLOAT"


class TestSchema:
    def test_of_shorthand(self):
        schema = Schema.of(a="int", b="float", c="str")
        assert schema.names == ("a", "b", "c")
        assert schema.type_of("b") is ColumnType.FLOAT

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema([Column("a", ColumnType.INT), Column("a", ColumnType.STR)])

    def test_unknown_column_error_lists_available(self):
        schema = Schema.of(a="int")
        with pytest.raises(UnknownColumnError) as excinfo:
            schema.column("b")
        assert "a" in str(excinfo.value)

    def test_contains(self):
        schema = Schema.of(a="int")
        assert "a" in schema
        assert "b" not in schema

    def test_index_of(self):
        schema = Schema.of(a="int", b="str")
        assert schema.index_of("b") == 1

    def test_project_preserves_order_given(self):
        schema = Schema.of(a="int", b="str", c="float")
        projected = schema.project(["c", "a"])
        assert projected.names == ("c", "a")

    def test_extend(self):
        schema = Schema.of(a="int")
        extended = schema.extend([Column("b", ColumnType.STR)])
        assert extended.names == ("a", "b")
        # Original unchanged.
        assert schema.names == ("a",)

    def test_extend_duplicate_rejected(self):
        schema = Schema.of(a="int")
        with pytest.raises(SchemaError):
            schema.extend([Column("a", ColumnType.STR)])

    def test_numeric_and_categorical_names(self):
        schema = Schema.of(a="int", b="str", c="float", d="bool")
        assert schema.numeric_names() == ("a", "c")
        assert schema.categorical_names() == ("b", "d")

    def test_equality_and_hash(self):
        s1 = Schema.of(a="int", b="str")
        s2 = Schema.of(a="int", b="str")
        s3 = Schema.of(b="str", a="int")
        assert s1 == s2
        assert hash(s1) == hash(s2)
        assert s1 != s3  # order matters

    def test_iteration(self):
        schema = Schema.of(a="int", b="str")
        assert [c.name for c in schema] == ["a", "b"]
        assert len(schema) == 2
