"""Tests for the tokenizer and SQL parser."""

import pytest

from repro.db.expr import (
    And,
    Arithmetic,
    Between,
    ColumnRef,
    Comparison,
    InList,
    IsNull,
    Like,
    Literal,
    Not,
    Or,
)
from repro.db.sqlparse import parse_select, tokenize
from repro.db.sqlparse.ast_nodes import AggregateCall, Star
from repro.db.sqlparse.tokens import TokenType
from repro.errors import SQLSyntaxError


class TestTokenizer:
    def test_basic_tokens(self):
        tokens = tokenize("SELECT a, b FROM t")
        kinds = [t.ttype for t in tokens]
        assert kinds[-1] is TokenType.EOF
        assert tokens[0].is_keyword("select")

    def test_string_with_escaped_quote(self):
        tokens = tokenize("'O''Brien'")
        assert tokens[0].value == "O'Brien"

    def test_unterminated_string(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("'oops")

    def test_numbers(self):
        tokens = tokenize("1 2.5 1e3 2.5e-2")
        values = [t.value for t in tokens[:-1]]
        assert values == [1, 2.5, 1000.0, 0.025]

    def test_operators(self):
        tokens = tokenize("<= >= != <> = < >")
        texts = [t.text for t in tokens[:-1]]
        assert texts == ["<=", ">=", "!=", "<>", "=", "<", ">"]

    def test_line_comments_skipped(self):
        tokens = tokenize("SELECT a -- comment here\nFROM t")
        texts = [t.text for t in tokens[:-1]]
        assert texts == ["SELECT", "a", "FROM", "t"]

    def test_unexpected_char_position(self):
        with pytest.raises(SQLSyntaxError) as excinfo:
            tokenize("SELECT ~")
        assert excinfo.value.position == 7


class TestParserBasics:
    def test_simple_aggregate(self):
        stmt = parse_select("SELECT avg(temp) FROM sensors")
        assert stmt.table == "sensors"
        assert isinstance(stmt.items[0].value, AggregateCall)
        assert stmt.items[0].value.func == "avg"

    def test_count_star(self):
        stmt = parse_select("SELECT count(*) FROM t")
        assert isinstance(stmt.items[0].value.arg, Star)

    def test_aliases_with_and_without_as(self):
        stmt = parse_select("SELECT avg(x) AS m, sum(y) total FROM t")
        assert stmt.items[0].alias == "m"
        assert stmt.items[1].alias == "total"

    def test_group_by_expression(self):
        stmt = parse_select("SELECT time / 30, avg(t) FROM s GROUP BY time / 30")
        key = stmt.group_by[0]
        assert isinstance(key, Arithmetic)
        assert key.op == "/"
        # The select item must be structurally equal to the group key.
        assert stmt.items[0].value == key

    def test_multi_group_by(self):
        stmt = parse_select("SELECT a, b, count(*) FROM t GROUP BY a, b")
        assert len(stmt.group_by) == 2

    def test_where_precedence_or_of_ands(self):
        stmt = parse_select("SELECT x FROM t WHERE a = 1 AND b = 2 OR c = 3")
        assert isinstance(stmt.where, Or)
        assert isinstance(stmt.where.operands[0], And)

    def test_not_binds_tighter_than_and(self):
        stmt = parse_select("SELECT x FROM t WHERE NOT a = 1 AND b = 2")
        assert isinstance(stmt.where, And)
        assert isinstance(stmt.where.operands[0], Not)

    def test_parenthesized_boolean(self):
        stmt = parse_select("SELECT x FROM t WHERE a = 1 AND (b = 2 OR c = 3)")
        assert isinstance(stmt.where, And)
        assert isinstance(stmt.where.operands[1], Or)

    def test_in_list(self):
        stmt = parse_select("SELECT x FROM t WHERE k IN ('a', 'b')")
        assert isinstance(stmt.where, InList)
        assert stmt.where.values == ("a", "b")

    def test_not_in(self):
        stmt = parse_select("SELECT x FROM t WHERE k NOT IN (1, -2)")
        assert stmt.where.negated
        assert stmt.where.values == (1, -2)

    def test_between(self):
        stmt = parse_select("SELECT x FROM t WHERE x BETWEEN 1 AND 5")
        assert isinstance(stmt.where, Between)

    def test_not_between(self):
        stmt = parse_select("SELECT x FROM t WHERE x NOT BETWEEN 1 AND 5")
        assert stmt.where.negated

    def test_like(self):
        stmt = parse_select("SELECT x FROM t WHERE memo LIKE '%SPOUSE%'")
        assert isinstance(stmt.where, Like)
        assert stmt.where.pattern == "%SPOUSE%"

    def test_is_null_and_is_not_null(self):
        stmt = parse_select("SELECT x FROM t WHERE a IS NULL")
        assert isinstance(stmt.where, IsNull) and not stmt.where.negated
        stmt = parse_select("SELECT x FROM t WHERE a IS NOT NULL")
        assert stmt.where.negated

    def test_arithmetic_precedence(self):
        stmt = parse_select("SELECT a + b * 2 FROM t")
        expr = stmt.items[0].value
        assert expr.op == "+"
        assert isinstance(expr.right, Arithmetic) and expr.right.op == "*"

    def test_unary_minus(self):
        stmt = parse_select("SELECT x FROM t WHERE amount < -100")
        assert isinstance(stmt.where, Comparison)

    def test_having_order_limit(self):
        stmt = parse_select(
            "SELECT day, sum(v) AS s FROM t GROUP BY day "
            "HAVING s > 10 ORDER BY day DESC LIMIT 5"
        )
        assert stmt.having is not None
        assert stmt.order_by[0].descending
        assert stmt.limit == 5

    def test_order_by_asc_default(self):
        stmt = parse_select("SELECT a, count(*) FROM t GROUP BY a ORDER BY a ASC")
        assert not stmt.order_by[0].descending

    def test_scalar_function_call(self):
        stmt = parse_select("SELECT abs(x) FROM t")
        assert stmt.items[0].value.func_name == "abs"

    def test_boolean_literals(self):
        stmt = parse_select("SELECT x FROM t WHERE flag = TRUE")
        assert isinstance(stmt.where.right, Literal)
        assert stmt.where.right.value is True


class TestParserErrors:
    def test_missing_from(self):
        with pytest.raises(SQLSyntaxError):
            parse_select("SELECT a")

    def test_trailing_garbage(self):
        with pytest.raises(SQLSyntaxError):
            parse_select("SELECT a FROM t extra nonsense ,")

    def test_keyword_as_table(self):
        with pytest.raises(SQLSyntaxError):
            parse_select("SELECT a FROM WHERE")

    def test_bad_limit(self):
        with pytest.raises(SQLSyntaxError):
            parse_select("SELECT a FROM t LIMIT -1")

    def test_unbalanced_parens(self):
        with pytest.raises(SQLSyntaxError):
            parse_select("SELECT a FROM t WHERE (a = 1")

    def test_empty_in_list(self):
        with pytest.raises(SQLSyntaxError):
            parse_select("SELECT a FROM t WHERE a IN ()")


class TestToSqlRoundTrip:
    """parse(stmt.to_sql()) must equal stmt for representative queries."""

    QUERIES = [
        "SELECT avg(temp) FROM sensors",
        "SELECT time / 30 AS window, avg(temp), stddev(temp) FROM s "
        "GROUP BY time / 30 ORDER BY window",
        "SELECT day, sum(amount) AS total FROM c WHERE candidate = 'MCCAIN' "
        "GROUP BY day ORDER BY day",
        "SELECT a, b, count(*) FROM t WHERE x BETWEEN 1 AND 2 GROUP BY a, b",
        "SELECT k, max(v) FROM t WHERE k IN ('x', 'y') AND v IS NOT NULL "
        "GROUP BY k HAVING max_v > 5 LIMIT 3",
        "SELECT x FROM t WHERE NOT (a = 1 OR b LIKE 'z%')",
    ]

    @pytest.mark.parametrize("query", QUERIES)
    def test_roundtrip_fixpoint(self, query):
        stmt = parse_select(query)
        rendered = stmt.to_sql()
        reparsed = parse_select(rendered)
        assert reparsed == stmt
        # And rendering again is a fixpoint.
        assert reparsed.to_sql() == rendered

    def test_with_extra_filter_and_undo(self):
        stmt = parse_select("SELECT a, sum(v) FROM t WHERE a > 0 GROUP BY a")
        condition = Not(Comparison("=", ColumnRef("k"), Literal("bad")))
        extended = stmt.with_extra_filter(condition)
        assert "NOT" in extended.to_sql()
        restored = extended.without_filter(condition)
        assert restored == stmt

    def test_without_filter_missing_raises(self):
        stmt = parse_select("SELECT a, sum(v) FROM t GROUP BY a")
        with pytest.raises(ValueError):
            stmt.without_filter(Literal(True))

    def test_cleaning_filters_property(self):
        stmt = parse_select("SELECT a, sum(v) FROM t WHERE a > 0 GROUP BY a")
        condition = Not(Comparison("=", ColumnRef("k"), Literal("bad")))
        extended = stmt.with_extra_filter(condition)
        assert extended.cleaning_filters == (condition,)
