"""Parity tests for the segmented group-aggregate kernels.

The grouped kernels (`compute_grouped`, `leave_one_out_grouped`,
`compute_without_grouped`) must agree with the per-group reference
implementations — and with the naive O(n²) recomputation — across
NaN-heavy, single-element, empty, and all-NULL segments for all seven
aggregates. These are the invariants the executor, Preprocessor, and
Ranker rely on after the hot paths were rewritten to consume
:class:`~repro.db.segments.SegmentedValues` end-to-end.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.aggregates import AGGREGATE_NAMES, get_aggregate
from repro.db.segments import (
    SegmentedValues,
    as_segments,
    segment_count,
    segment_max,
    segment_min,
    segment_sum,
)
from repro.errors import AggregateError

ALL = [get_aggregate(name) for name in AGGREGATE_NAMES]

segment_strategy = st.lists(
    st.one_of(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        st.just(float("nan")),
    ),
    min_size=0,
    max_size=12,
)
segments_strategy = st.lists(segment_strategy, min_size=0, max_size=8)


def _tolerance(seg: SegmentedValues) -> float:
    finite = seg.values[~np.isnan(seg.values)]
    spread = float(finite.max() - finite.min()) if len(finite) else 0.0
    return 1e-6 + 1e-12 * (1.0 + spread) ** 2


class TestSegmentedValues:
    def test_from_arrays_layout(self):
        seg = SegmentedValues.from_arrays(
            [np.array([1.0, 2.0]), np.array([]), np.array([3.0])]
        )
        assert seg.n_segments == 3
        assert seg.offsets.tolist() == [0, 2, 2, 3]
        assert seg.segment(0).tolist() == [1.0, 2.0]
        assert seg.segment(1).tolist() == []
        assert seg.segment_ids.tolist() == [0, 0, 2]
        assert seg.lengths.tolist() == [2, 0, 1]

    def test_from_codes_round_trip(self):
        values = np.array([10.0, 20.0, 30.0, 40.0])
        codes = np.array([1, 0, 1, 2])
        seg, order = SegmentedValues.from_codes(values, codes, 3)
        assert seg.values.tolist() == values[order].tolist()
        assert seg.segment(0).tolist() == [20.0]
        assert seg.segment(1).tolist() == [10.0, 30.0]
        assert seg.segment(2).tolist() == [40.0]

    def test_bad_offsets_rejected(self):
        with pytest.raises(AggregateError):
            SegmentedValues(np.array([1.0]), np.array([0, 2]))
        with pytest.raises(AggregateError):
            SegmentedValues(np.array([1.0, 2.0]), np.array([0, 2, 1, 2]))

    def test_object_values_rejected(self):
        with pytest.raises(AggregateError):
            SegmentedValues(np.array(["a"], dtype=object), np.array([0, 1]))

    def test_split_flat(self):
        seg = SegmentedValues.from_arrays([np.array([1.0]), np.array([2.0, 3.0])])
        parts = seg.split_flat(np.array([True, False, True]))
        assert [p.tolist() for p in parts] == [[True], [False, True]]

    def test_split_flat_length_checked(self):
        seg = SegmentedValues.from_arrays([np.array([1.0])])
        with pytest.raises(AggregateError):
            seg.split_flat(np.array([True, False]))

    def test_as_segments_passthrough(self):
        seg = SegmentedValues.from_arrays([np.array([1.0])])
        assert as_segments(seg) is seg
        assert as_segments([np.array([1.0])]).values.tolist() == [1.0]

    def test_empty(self):
        seg = SegmentedValues.from_arrays([])
        assert seg.n_segments == 0
        assert len(seg) == 0
        assert seg.segment_ids.tolist() == []


class TestSegmentKernels:
    def test_segment_sum_handles_empty_segments(self):
        offsets = np.array([0, 2, 2, 3])
        values = np.array([1.0, 2.0, 5.0])
        assert segment_sum(values, offsets).tolist() == [3.0, 0.0, 5.0]

    def test_segment_min_max_fill(self):
        offsets = np.array([0, 0, 2])
        values = np.array([4.0, -1.0])
        assert segment_min(values, offsets).tolist() == [np.inf, -1.0]
        assert segment_max(values, offsets).tolist() == [-np.inf, 4.0]

    def test_segment_count(self):
        offsets = np.array([0, 1, 3])
        mask = np.array([True, False, True])
        assert segment_count(mask, offsets).tolist() == [1.0, 1.0]

    def test_all_empty_segments(self):
        offsets = np.zeros(5, dtype=np.int64)
        assert segment_sum(np.empty(0), offsets).tolist() == [0.0] * 4


def _assert_grouped_matches(seg, fast, reference, atol):
    np.testing.assert_allclose(fast, reference, rtol=1e-6, atol=atol)


class TestGroupedParityHandPicked:
    """Deterministic edge cases: empty, singleton, all-NULL segments."""

    EDGE_SEGMENTS = [
        np.array([]),
        np.array([3.0]),
        np.array([np.nan]),
        np.array([np.nan, np.nan]),
        np.array([5.0, 5.0, 1.0, np.nan]),
        np.array([1.0, 2.0, 3.0, 10.0, -4.0]),
        np.array([np.nan, 7.0]),
    ]

    @pytest.mark.parametrize("agg", ALL, ids=lambda a: a.name)
    def test_compute_grouped(self, agg):
        seg = SegmentedValues.from_arrays(self.EDGE_SEGMENTS)
        _assert_grouped_matches(
            seg, agg.compute_grouped(seg), agg.compute_grouped_loop(seg), 1e-9
        )

    @pytest.mark.parametrize("agg", ALL, ids=lambda a: a.name)
    def test_leave_one_out_grouped(self, agg):
        seg = SegmentedValues.from_arrays(self.EDGE_SEGMENTS)
        _assert_grouped_matches(
            seg,
            agg.leave_one_out_grouped(seg),
            agg.leave_one_out_grouped_loop(seg),
            1e-9,
        )

    @pytest.mark.parametrize("agg", ALL, ids=lambda a: a.name)
    def test_leave_one_out_grouped_matches_naive(self, agg):
        seg = SegmentedValues.from_arrays(self.EDGE_SEGMENTS)
        naive = (
            np.concatenate(
                [
                    agg.leave_one_out_naive(seg.segment(g))
                    for g in range(seg.n_segments)
                ]
            )
            if seg.n_segments
            else np.empty(0)
        )
        # sqrt amplifies ~1e-16 closed-form noise near var=0 to ~1e-8.
        _assert_grouped_matches(seg, agg.leave_one_out_grouped(seg), naive, 1e-6)

    @pytest.mark.parametrize("agg", ALL, ids=lambda a: a.name)
    def test_compute_without_grouped(self, agg):
        seg = SegmentedValues.from_arrays(self.EDGE_SEGMENTS)
        rng = np.random.default_rng(7)
        mask = rng.random(len(seg.values)) < 0.5
        _assert_grouped_matches(
            seg,
            agg.compute_without_grouped(seg, mask),
            agg.compute_without_grouped_loop(seg, mask),
            1e-9,
        )

    def test_mask_length_checked(self):
        seg = SegmentedValues.from_arrays([np.array([1.0, 2.0])])
        with pytest.raises(AggregateError):
            get_aggregate("avg").compute_without_grouped(seg, np.array([True]))


class TestGroupedParityProperties:
    """Property tests over arbitrary NaN-heavy ragged segment layouts."""

    @settings(max_examples=60, deadline=None)
    @given(groups=segments_strategy, agg_name=st.sampled_from(AGGREGATE_NAMES))
    def test_compute_grouped(self, groups, agg_name):
        agg = get_aggregate(agg_name)
        seg = SegmentedValues.from_arrays(
            [np.array(g, dtype=np.float64) for g in groups]
        )
        _assert_grouped_matches(
            seg,
            agg.compute_grouped(seg),
            agg.compute_grouped_loop(seg),
            _tolerance(seg),
        )

    @settings(max_examples=60, deadline=None)
    @given(groups=segments_strategy, agg_name=st.sampled_from(AGGREGATE_NAMES))
    def test_leave_one_out_grouped(self, groups, agg_name):
        agg = get_aggregate(agg_name)
        seg = SegmentedValues.from_arrays(
            [np.array(g, dtype=np.float64) for g in groups]
        )
        _assert_grouped_matches(
            seg,
            agg.leave_one_out_grouped(seg),
            agg.leave_one_out_grouped_loop(seg),
            _tolerance(seg),
        )

    @settings(max_examples=60, deadline=None)
    @given(
        groups=segments_strategy,
        agg_name=st.sampled_from(AGGREGATE_NAMES),
        data=st.data(),
    )
    def test_compute_without_grouped(self, groups, agg_name, data):
        agg = get_aggregate(agg_name)
        seg = SegmentedValues.from_arrays(
            [np.array(g, dtype=np.float64) for g in groups]
        )
        mask = np.array(
            data.draw(
                st.lists(
                    st.booleans(),
                    min_size=len(seg.values),
                    max_size=len(seg.values),
                )
            ),
            dtype=bool,
        )
        _assert_grouped_matches(
            seg,
            agg.compute_without_grouped(seg, mask),
            agg.compute_without_grouped_loop(seg, mask),
            _tolerance(seg),
        )
