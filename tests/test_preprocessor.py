"""Tests for the Preprocessor stage."""

import numpy as np
import pytest

from repro.core import Preprocessor, TooHigh, TooLow
from repro.errors import PipelineError


@pytest.fixture
def window_result(sensors_db):
    return sensors_db.sql(
        "SELECT time / 30 AS w, avg(temp) AS m FROM sensors GROUP BY time / 30 "
        "ORDER BY w"
    )


class TestPreprocessor:
    def test_F_is_union_of_selected_lineage(self, window_result):
        pre = Preprocessor().run(window_result, [1], TooHigh(30.0))
        # Window 1 holds tids 1, 3, 6 (times 35, 31, 40).
        assert sorted(np.asarray(pre.F.tids).tolist()) == [1, 3, 6]

    def test_group_values_match_lineage(self, window_result):
        pre = Preprocessor().run(window_result, [1], TooHigh(30.0))
        assert sorted(pre.group_values[0].tolist()) == [20.5, 21.0, 120.0]

    def test_default_agg_is_first(self, window_result):
        pre = Preprocessor().run(window_result, [1], TooHigh(30.0))
        assert pre.agg_name == "m"
        assert pre.aggregate.name == "avg"

    def test_named_agg_selected(self, sensors_db):
        result = sensors_db.sql(
            "SELECT room, avg(temp) AS m, stddev(temp) AS s FROM sensors "
            "GROUP BY room ORDER BY room"
        )
        pre = Preprocessor().run(result, [1], TooHigh(1.0), agg_name="s")
        assert pre.aggregate.name == "stddev"

    def test_epsilon_matches_metric(self, window_result):
        pre = Preprocessor().run(window_result, [1], TooHigh(30.0))
        expected = np.mean([20.5, 21.0, 120.0]) - 30.0
        assert pre.epsilon == pytest.approx(expected)

    def test_influence_identifies_the_bad_reading(self, window_result):
        pre = Preprocessor().run(window_result, [1], TooHigh(30.0))
        assert pre.influence.ranked_tids()[0] == 3  # the 120-degree tuple

    def test_multiple_selected_groups(self, window_result):
        pre = Preprocessor().run(window_result, [0, 1, 2], TooHigh(30.0))
        assert len(pre.group_values) == 3
        assert len(pre.F) == 7

    def test_empty_selection_rejected(self, window_result):
        with pytest.raises(PipelineError):
            Preprocessor().run(window_result, [], TooHigh(30.0))

    def test_out_of_range_selection_rejected(self, window_result):
        with pytest.raises(PipelineError):
            Preprocessor().run(window_result, [99], TooHigh(30.0))

    def test_non_aggregate_query_rejected(self, sensors_db):
        projection = sensors_db.sql("SELECT temp FROM sensors")
        with pytest.raises(PipelineError):
            Preprocessor().run(projection, [0], TooHigh(30.0))

    def test_unknown_agg_name_rejected(self, window_result):
        with pytest.raises(PipelineError):
            Preprocessor().run(window_result, [0], TooHigh(30.0), agg_name="zz")

    def test_group_masks_for_tids(self, window_result):
        pre = Preprocessor().run(window_result, [1], TooLow(1000.0))
        masks = pre.group_masks_for_tids(np.array([3]))
        assert len(masks) == 1
        assert masks[0].sum() == 1

    def test_count_star_debuggable(self, sensors_db):
        result = sensors_db.sql(
            "SELECT room, count(*) AS n FROM sensors GROUP BY room ORDER BY room"
        )
        pre = Preprocessor().run(result, [0], TooHigh(3.0))
        assert pre.epsilon == pytest.approx(1.0)  # room a has 4 rows
