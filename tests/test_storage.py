"""The durable columnar storage tier and its parity contract.

Four layers under test, bottom up:

* :mod:`repro.db.store` — the :class:`ColumnStore` implementations:
  round-tripping every column type through the chunked ``.npy`` +
  manifest layout, lazy gathers/slices, content digests, and the
  atomic first-writer-wins publication protocol;
* :mod:`repro.core.artifacts` — persisted
  :class:`~repro.core.preprocessor.PreprocessResult` bundles and the
  disk-backed second level of :class:`PreprocessCache`;
* :class:`~repro.service.cache.DatasetCatalog` durability — persist on
  first build, reopen from manifests on the next process, survive
  concurrent writers (the forked-worker race);
* the **parity harness**: ``debug()`` through a memory-mapped table is
  byte-identical to the in-memory reference across execution backends
  and scoring algorithms, and a *restarted* server's first ``debug()``
  is byte-identical to the pre-restart answer while measurably warm
  (the preprocess artifact is a disk hit, never a recompute).
"""

from __future__ import annotations

import json
import multiprocessing
import os

import numpy as np
import pytest

from repro.core import Preprocessor, TooHigh
from repro.core.artifacts import ArtifactStore, artifact_key
from repro.core.pipeline import PipelineConfig
from repro.core.preprocessor import PreprocessCache
from repro.data import intel_at_scale
from repro.db import Database, MmapColumnStore, Table
from repro.db.segments import blocked_ranges
from repro.db.store import MANIFEST_NAME, table_digest
from repro.db.types import dict_decode, dict_encode
from repro.errors import StorageError
from repro.frontend import Brush, DBWipesSession
from repro.service import DBWipesServer, ServiceClient, SessionManager
from repro.service.cache import DatasetCatalog

TOY_SQL = "SELECT g, avg(v) AS avg_v FROM toy GROUP BY g ORDER BY g"


def toy_table(n_groups: int = 6, per: int = 30) -> Table:
    """A small table exercising every column type, with planted outliers."""
    rng = np.random.default_rng(11)
    n = n_groups * per
    g = np.repeat(np.arange(n_groups), per)
    v = rng.normal(1.0, 0.1, n)
    tag = np.array(["ok"] * n, dtype=object)
    bad = (g == 2) & (np.arange(n) % per < 7)
    v[bad] += 100.0
    tag[bad] = "bad"
    tag[::13] = None  # STR NULLs must survive the dict-encoded round trip
    w = v * 2.0
    w[5] = np.nan  # FLOAT NULL
    return Table.from_columns(
        {"g": g, "v": v, "w": w, "tag": tag}, name="toy"
    )


def build_toy_db() -> Database:
    db = Database()
    db.register(toy_table())
    return db


def debug_lines(db: Database, config: PipelineConfig | None = None) -> list[str]:
    """One scripted toy debug cycle from fresh state, canonicalized."""
    session = DBWipesSession(db, config)
    session.execute(TOY_SQL)
    session.select_results(Brush.above(5.0))
    session.zoom()
    session.select_inputs(Brush.above(50.0))
    session.set_metric("too_high", threshold=2.0)
    report = session.debug()
    lines = [
        "|".join(
            (
                ranked.predicate.describe(),
                ranked.predicate.to_sql(),
                repr(ranked.score),
                repr(ranked.epsilon_before),
                repr(ranked.epsilon_after),
            )
        )
        for ranked in report
    ]
    assert lines  # the cycle must actually rank something
    return lines


# ----------------------------------------------------------------------
# store primitives
# ----------------------------------------------------------------------


class TestBlockedRanges:
    def test_tiles_exactly(self):
        assert list(blocked_ranges(10, 4)) == [(0, 4), (4, 8), (8, 10)]
        assert list(blocked_ranges(8, 4)) == [(0, 4), (4, 8)]
        assert list(blocked_ranges(3, 100)) == [(0, 3)]

    def test_zero_rows_is_one_empty_block(self):
        assert list(blocked_ranges(0, 4)) == [(0, 0)]

    def test_rejects_bad_block_size(self):
        with pytest.raises(StorageError):
            list(blocked_ranges(5, 0))


class TestDictEncoding:
    def test_round_trip_with_nulls(self):
        values = np.array(["b", None, "a", "b", None, "c"], dtype=object)
        codes, ordered = dict_encode(values)
        assert codes.dtype == np.int64
        assert ordered == ["b", "a", "c"]  # first-occurrence order
        assert list(codes) == [0, -1, 1, 0, -1, 2]
        decoded = dict_decode(codes, ordered)
        assert decoded.dtype == object
        assert list(decoded) == ["b", None, "a", "b", None, "c"]

    def test_deterministic(self):
        values = np.array(["x", "y", "x"], dtype=object)
        assert dict_encode(values)[1] == dict_encode(values.copy())[1]


class TestMmapRoundTrip:
    @pytest.fixture()
    def saved(self, tmp_path):
        table = toy_table()
        reopened = table.save(tmp_path / "toy", chunk_rows=32)
        return table, reopened, tmp_path / "toy"

    def test_every_column_round_trips(self, saved):
        table, reopened, _ = saved
        assert isinstance(reopened.store, MmapColumnStore)
        assert reopened.num_rows == table.num_rows
        assert list(reopened.tids) == list(table.tids)
        for column in table.schema.names:
            a, b = table.column(column), reopened.column(column)
            assert a.dtype == b.dtype
            if a.dtype == object:
                assert list(a) == list(b)
            else:
                np.testing.assert_array_equal(a, b)

    def test_chunked_layout_on_disk(self, saved):
        _, _, directory = saved
        with (directory / MANIFEST_NAME).open() as handle:
            manifest = json.load(handle)
        # 180 rows at 32 rows/chunk = 6 chunks per numeric column.
        numeric = {c["name"]: c for c in manifest["columns"]}
        assert len(numeric["v"]["chunks"]) == 6
        files = {p.name for p in directory.iterdir()}
        assert MANIFEST_NAME in files and "tids.npy" in files
        assert all(name in files for name in numeric["v"]["chunks"])

    def test_row_blocks_cross_chunk_boundaries(self, saved):
        table, reopened, _ = saved
        for lo, hi in [(0, 5), (30, 34), (31, 97), (0, 180), (179, 180)]:
            for column in ("g", "v", "tag"):
                expected = table.column(column)[lo:hi]
                got = reopened.store.row_block(column, lo, hi)
                if expected.dtype == object:
                    assert list(got) == list(expected)
                else:
                    np.testing.assert_array_equal(got, expected)

    def test_open_is_lazy_and_digest_needs_no_data(self, saved, tmp_path):
        _, _, directory = saved
        store = MmapColumnStore.open(directory)
        # The digest comes straight from the manifest: corrupting every
        # data file must not matter until a column is actually read.
        for chunk in directory.glob("*.c*.npy"):
            chunk.write_bytes(b"corrupt")
        assert store.digest == toy_table().content_digest()

    def test_columns_are_read_only(self, saved):
        _, reopened, _ = saved
        for column in ("g", "v"):
            with pytest.raises(ValueError):
                reopened.column(column)[0] = 0

    def test_empty_table_round_trips(self, tmp_path):
        empty = toy_table().filter(np.zeros(180, dtype=bool))
        reopened = empty.save(tmp_path / "empty")
        assert reopened.num_rows == 0
        assert list(reopened.column("tag")) == []

    def test_refuses_clobber_without_overwrite(self, saved):
        table, _, directory = saved
        with pytest.raises(StorageError):
            table.save(directory)
        table.save(directory, overwrite=True)  # explicit is allowed

    def test_open_missing_directory_raises(self, tmp_path):
        with pytest.raises(StorageError):
            Table.open(tmp_path / "nowhere")


class TestDigest:
    def test_identical_across_representations(self, tmp_path):
        table = toy_table()
        mmap_table = table.save(tmp_path / "toy")
        assert table.content_digest() == mmap_table.content_digest()
        gathered = table.take(np.arange(table.num_rows))
        assert gathered.content_digest() == table.content_digest()

    def test_sensitive_to_data_and_tids(self):
        base = toy_table()
        other = toy_table(per=31)
        assert base.content_digest() != other.content_digest()
        shuffled = base.take(np.arange(base.num_rows)[::-1])
        assert shuffled.content_digest() != base.content_digest()

    def test_table_digest_matches_method(self):
        table = toy_table()
        assert (
            table_digest(table.schema, table.column, table.tids)
            == table.content_digest()
        )


class TestLazyStores:
    def test_take_defers_gather(self, tmp_path):
        table = toy_table().save(tmp_path / "toy", chunk_rows=50)
        picked = table.take(np.array([3, 170, 44, 3]))
        np.testing.assert_array_equal(
            picked.column("v"),
            table.column("v")[[3, 170, 44, 3]],
        )
        assert list(picked.column("tag")) == [
            table.column("tag")[i] for i in (3, 170, 44, 3)
        ]

    def test_slice_rows_matches_filter(self):
        table = toy_table()
        window = table.slice_rows(40, 90)
        mask = np.zeros(table.num_rows, dtype=bool)
        mask[40:90] = True
        reference = table.filter(mask)
        assert list(window.tids) == list(reference.tids)
        np.testing.assert_array_equal(window.column("v"), reference.column("v"))

    def test_compositions_stay_flat_and_correct(self):
        table = toy_table()
        chained = table.take(np.arange(0, 180, 2)).slice_rows(10, 50).take(
            np.array([0, 5, 39])
        )
        expected = np.arange(0, 180, 2)[10:50][[0, 5, 39]]
        np.testing.assert_array_equal(
            chained.column("v"), table.column("v")[expected]
        )


class TestAtomicPublication:
    def test_write_race_adopts_winner(self, tmp_path, monkeypatch):
        """A writer that loses the publish rename adopts the winner's copy.

        The race window is between ``write``'s existence check and its
        atomic rename; we recreate it deterministically by publishing a
        competing copy from inside a patched ``os.rename``.
        """
        table = toy_table()
        directory = tmp_path / "toy"
        real_rename = os.rename
        state = {"raced": False}

        def racing_rename(src, dst):
            if os.fspath(dst) == str(directory) and not state["raced"]:
                state["raced"] = True
                MmapColumnStore.write(table, directory)  # the winner lands
            return real_rename(src, dst)

        monkeypatch.setattr(os, "rename", racing_rename)
        store = MmapColumnStore.write(table, directory)
        assert state["raced"]
        assert store.digest == table.content_digest()
        np.testing.assert_array_equal(
            store.row_block("v", 0, 180), table.column("v")
        )
        assert not list(tmp_path.glob("*.tmp-*"))  # no staging debris


# ----------------------------------------------------------------------
# preprocess artifacts
# ----------------------------------------------------------------------


def _preprocess_result(db: Database):
    """Run the toy query and preprocess the outlier group's selection."""
    result = db.sql(TOY_SQL)
    metric = TooHigh(2.0)
    pre = Preprocessor().run(result, [2], metric)
    return result, pre, metric


class TestArtifactStore:
    def test_round_trip_is_byte_identical(self, tmp_path):
        db = build_toy_db()
        result, pre, metric = _preprocess_result(db)
        key = artifact_key(result, pre.selected_rows, metric, pre.agg_name)
        assert key is not None
        store = ArtifactStore(tmp_path)
        assert store.save(key, pre)
        assert store.has(key)
        loaded = store.load(key)
        assert loaded is not None
        np.testing.assert_array_equal(loaded.influence.tids, pre.influence.tids)
        np.testing.assert_array_equal(
            loaded.influence.scores, pre.influence.scores
        )
        assert loaded.epsilon == pre.epsilon
        assert loaded.agg_name == pre.agg_name
        assert loaded.selected_rows == pre.selected_rows
        assert len(loaded.group_values) == len(pre.group_values)
        for a, b in zip(pre.group_values, loaded.group_values):
            np.testing.assert_array_equal(a, b)
        for column in pre.F.schema.names:
            a, b = pre.F.column(column), loaded.F.column(column)
            if a.dtype == object:
                assert list(a) == list(b)
            else:
                np.testing.assert_array_equal(a, b)

    def test_corrupt_artifact_is_a_miss(self, tmp_path):
        db = build_toy_db()
        result, pre, metric = _preprocess_result(db)
        key = artifact_key(result, pre.selected_rows, metric, pre.agg_name)
        store = ArtifactStore(tmp_path)
        store.save(key, pre)
        store.path(key).write_bytes(b"not an npz")
        assert store.load(key) is None
        assert store.stats()["load_failures"] == 1

    def test_save_is_idempotent(self, tmp_path):
        db = build_toy_db()
        result, pre, metric = _preprocess_result(db)
        key = artifact_key(result, pre.selected_rows, metric, pre.agg_name)
        store = ArtifactStore(tmp_path)
        assert store.save(key, pre) is True
        assert store.save(key, pre) is False  # already durable: no rewrite
        assert store.keys() == [key]

    def test_key_depends_on_inputs(self, tmp_path):
        db = build_toy_db()
        result, pre, metric = _preprocess_result(db)
        base = artifact_key(result, [2], metric, pre.agg_name)
        assert base == artifact_key(result, [2], metric, pre.agg_name)
        assert base != artifact_key(result, [1, 2], metric, pre.agg_name)
        assert base != artifact_key(result, [2], TooHigh(3.0), pre.agg_name)

    def test_key_survives_representation_change(self, tmp_path):
        """In-memory and mmap copies of one table share artifact keys."""
        db = build_toy_db()
        result, pre, metric = _preprocess_result(db)
        mmap_db = db.save(tmp_path / "ds")
        mmap_result = mmap_db.sql(TOY_SQL)
        assert artifact_key(result, [2], metric, pre.agg_name) == artifact_key(
            mmap_result, [2], metric, pre.agg_name
        )


class TestDiskBackedPreprocessCache:
    def test_second_process_hits_disk(self, tmp_path):
        db = build_toy_db()
        result, pre, metric = _preprocess_result(db)
        key = artifact_key(result, pre.selected_rows, metric, pre.agg_name)

        cold = PreprocessCache(disk=ArtifactStore(tmp_path))
        first = cold.get_or_compute("k", lambda: pre, disk_key=key)
        assert first is pre
        assert cold.stats()["disk_writes"] == 1

        warm = PreprocessCache(disk=ArtifactStore(tmp_path))  # "restart"
        def explode():
            raise AssertionError("warm path must not recompute")

        loaded = warm.get_or_compute("k", explode, disk_key=key)
        stats = warm.stats()
        assert stats["disk_hits"] == 1 and stats["misses"] == 1
        np.testing.assert_array_equal(
            loaded.influence.scores, pre.influence.scores
        )


# ----------------------------------------------------------------------
# durable catalog
# ----------------------------------------------------------------------


def _toy_catalog(data_dir) -> DatasetCatalog:
    catalog = DatasetCatalog(data_dir=data_dir)
    catalog.register("toy", build_toy_db, bootstrap=TOY_SQL)
    return catalog


def _build_toy_in_subprocess(data_dir: str) -> None:
    catalog = _toy_catalog(data_dir)
    db = catalog.get("toy")
    assert db.table("toy").num_rows == 180


class TestDurableCatalog:
    def test_first_build_persists_and_serves_mmap(self, tmp_path):
        catalog = _toy_catalog(tmp_path)
        db = catalog.get("toy")
        assert isinstance(db.table("toy").store, MmapColumnStore)
        assert (tmp_path / "tables" / "toy" / "dataset.json").exists()

    def test_restart_reopens_without_builder(self, tmp_path):
        _toy_catalog(tmp_path).get("toy")
        fresh = DatasetCatalog(data_dir=tmp_path)  # builder NOT registered
        assert "toy" in fresh.names  # discovered from disk
        assert fresh.bootstrap("toy") == TOY_SQL  # dataset.json carries it
        db = fresh.get("toy")
        assert db.table("toy").content_digest() == toy_table().content_digest()

    def test_import_dataset_idempotent(self, tmp_path):
        catalog = _toy_catalog(tmp_path)
        _, created = catalog.import_dataset("toy", chunk_rows=64)
        assert created
        again = _toy_catalog(tmp_path)
        _, created = again.import_dataset("toy")
        assert not created

    def test_import_without_data_dir_raises(self):
        catalog = DatasetCatalog()
        catalog.register("toy", build_toy_db)
        with pytest.raises(StorageError):
            catalog.import_dataset("toy")

    def test_concurrent_cold_builders_leave_one_copy(self, tmp_path):
        ctx = multiprocessing.get_context("fork")
        procs = [
            ctx.Process(target=_build_toy_in_subprocess, args=(str(tmp_path),))
            for _ in range(3)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(60)
            assert p.exitcode == 0
        tables_dir = tmp_path / "tables"
        assert [p.name for p in sorted(tables_dir.iterdir())] == ["toy"]
        assert not list(tables_dir.glob("*.tmp-*"))
        db = Database.open(tables_dir / "toy")
        assert db.table("toy").content_digest() == toy_table().content_digest()

    def test_storage_info_reads_manifests_only(self, tmp_path):
        catalog = _toy_catalog(tmp_path)
        catalog.get("toy")
        info = DatasetCatalog(data_dir=tmp_path).storage_info()
        (entry,) = info["datasets"]
        assert entry["name"] == "toy" and entry["persisted"]
        assert entry["tables"][0]["rows"] == 180


# ----------------------------------------------------------------------
# parity: mmap vs in-memory, across backends × score algorithms
# ----------------------------------------------------------------------


class TestStoreParity:
    """debug() is byte-identical no matter where the bytes live."""

    @pytest.fixture(scope="class")
    def baseline(self) -> list[str]:
        return debug_lines(build_toy_db(), PipelineConfig())

    @pytest.fixture(scope="class")
    def mmap_db(self, tmp_path_factory) -> Database:
        directory = tmp_path_factory.mktemp("parity")
        return build_toy_db().save(directory / "toy")

    @pytest.mark.parametrize("score_algorithm", ["batch", "per_rule"])
    @pytest.mark.parametrize(
        "backend,n_partitions", [("in_process", 1), ("partitioned", 3)]
    )
    def test_mmap_matches_in_memory(
        self, baseline, mmap_db, backend, n_partitions, score_algorithm
    ):
        config = PipelineConfig(
            backend=backend,
            n_partitions=n_partitions,
            score_algorithm=score_algorithm,
        )
        assert debug_lines(mmap_db, config) == baseline

    def test_scaled_intel_config_scales_rows_only(self):
        base = intel_at_scale(1)
        big = intel_at_scale(3)
        assert big.duration_minutes == 3 * base.duration_minutes
        assert big.n_sensors == base.n_sensors


# ----------------------------------------------------------------------
# warm restarts through real servers
# ----------------------------------------------------------------------


def _service_debug(client: ServiceClient, session: str) -> dict:
    client.open("toy", session=session)
    client.execute(TOY_SQL)
    client.select_results(brush={"above": 5.0}, y="avg_v")
    client.zoom()
    client.select_inputs(brush={"above": 50.0})
    client.set_metric("too_high", threshold=2.0)
    report = client.debug(max_rows=None)
    report["timings"] = None  # wall-clock differs run to run, by design
    return report


class TestWarmRestartThreaded:
    def test_first_debug_after_restart_is_warm_and_identical(self, tmp_path):
        manager = SessionManager(catalog=_toy_catalog(tmp_path))
        with DBWipesServer(manager, port=0) as server:
            host, port = server.address
            with ServiceClient(host, port, timeout=60) as client:
                cold = _service_debug(client, "boot-1")
                cold_stats = client.stats()["preprocess_cache"]
        assert cold_stats["disk_writes"] >= 1  # artifact persisted

        restarted = SessionManager(catalog=_toy_catalog(tmp_path))
        with DBWipesServer(restarted, port=0) as server:
            host, port = server.address
            with ServiceClient(host, port, timeout=60) as client:
                warm = _service_debug(client, "boot-2")
                warm_stats = client.stats()["preprocess_cache"]
        assert warm == cold  # byte-identical first answer
        assert warm_stats["disk_hits"] >= 1  # ...and it came from disk
        assert warm_stats["disk_writes"] == 0  # nothing recomputed


class TestWarmRestartWorkers:
    def test_multiprocess_restart_serves_warm_first_debug(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_DATA_DIR", str(tmp_path))
        with DBWipesServer(workers=2, port=0, catalog_factory=None) as server:
            host, port = server.address
            with ServiceClient(host, port, timeout=120) as client:
                client.open("intel", session="w1")
                client.execute(
                    "SELECT minute / 30 AS window, avg(temp) AS avg_temp, "
                    "stddev(temp) AS std_temp FROM readings "
                    "GROUP BY minute / 30 ORDER BY window"
                )
                client.select_results(brush={"above": 2.0}, y="std_temp")
                client.set_metric("too_high")
                cold = client.debug(max_rows=None)
                cold["timings"] = None
                cold_stats = client.stats()["preprocess_cache"]
        assert cold_stats["disk_writes"] >= 1
        assert (tmp_path / "tables" / "intel" / "dataset.json").exists()

        with DBWipesServer(workers=2, port=0, catalog_factory=None) as server:
            host, port = server.address
            with ServiceClient(host, port, timeout=120) as client:
                client.open("intel", session="w2")
                client.execute(
                    "SELECT minute / 30 AS window, avg(temp) AS avg_temp, "
                    "stddev(temp) AS std_temp FROM readings "
                    "GROUP BY minute / 30 ORDER BY window"
                )
                client.select_results(brush={"above": 2.0}, y="std_temp")
                client.set_metric("too_high")
                warm = client.debug(max_rows=None)
                warm["timings"] = None
                warm_stats = client.stats()["preprocess_cache"]
        assert warm == cold
        assert warm_stats["disk_hits"] >= 1
        assert warm_stats["disk_writes"] == 0

    def test_storage_command_merges_across_workers(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_DATA_DIR", str(tmp_path))
        _toy_catalog(tmp_path).get("toy")  # pre-persist one dataset
        with DBWipesServer(workers=2, port=0) as server:
            host, port = server.address
            with ServiceClient(host, port, timeout=60) as client:
                info = client.call("storage")
        assert info["workers"] == 2
        assert info["data_dir"] == str(tmp_path)
        names = {entry["name"] for entry in info["datasets"]}
        assert "toy" in names
