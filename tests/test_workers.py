"""The multi-process serving tier: pool, ring, and router behavior.

Covers the three layers added by the partitioned execution engine:
:class:`~repro.service.workers.WorkerPool` (process lifecycle and
envelope transport), :class:`~repro.service.router.HashRing`
(deterministic, stable dataset→worker assignment), and
:class:`~repro.service.router.RoutingDispatcher` (placement bookkeeping
and scatter-gather fan-out) — plus end-to-end parity: the same debug
cycle through a multi-worker server returns byte-identical payloads to
the single-process server.
"""

from __future__ import annotations

import pytest

from repro.cli import BOOTSTRAP_QUERIES
from repro.errors import ServiceError
from repro.service import (
    DBWipesServer,
    HashRing,
    RoutingDispatcher,
    ServiceClient,
    WorkerPool,
)


def _debug_payload(client: ServiceClient, session: str) -> dict:
    client.open("intel", session=session)
    client.execute(BOOTSTRAP_QUERIES["intel"])
    client.select_results(brush={"above": 2.0}, y="std_temp")
    client.set_metric("too_high")
    report = client.debug(max_rows=None)
    report["timings"] = None  # wall-clock differs run to run, by design
    return report


class TestHashRing:
    def test_deterministic_across_instances(self):
        first = HashRing(range(4))
        second = HashRing(range(4))
        keys = [f"dataset-{i}" for i in range(100)]
        assert [first.node_for(k) for k in keys] == [
            second.node_for(k) for k in keys
        ]

    def test_spreads_keys(self):
        ring = HashRing(range(4))
        owners = {ring.node_for(f"dataset-{i}") for i in range(200)}
        assert owners == {0, 1, 2, 3}

    def test_mostly_stable_when_a_node_joins(self):
        keys = [f"dataset-{i}" for i in range(400)]
        small = HashRing(range(4))
        grown = HashRing(range(5))
        moved = sum(
            1 for k in keys if small.node_for(k) != grown.node_for(k)
        )
        # Consistent hashing moves ~1/5 of the keys; mod-N would move ~4/5.
        assert moved < len(keys) // 2

    def test_rejects_empty_and_bad_replicas(self):
        with pytest.raises(ValueError):
            HashRing([])
        with pytest.raises(ValueError):
            HashRing([0], replicas=0)


class TestWorkerPool:
    def test_ping_and_broadcast(self):
        with WorkerPool(2) as pool:
            assert len(pool) == 2
            envelope = pool.call(0, {"id": 1, "cmd": "ping"})
            assert envelope["ok"] and envelope["result"]["pong"]
            envelopes = pool.broadcast({"id": 2, "cmd": "stats"})
            assert len(envelopes) == 2
            assert all(e["ok"] for e in envelopes)

    def test_rejects_zero_workers(self):
        with pytest.raises(ServiceError):
            WorkerPool(0)

    def test_stats_shape(self):
        with WorkerPool(2) as pool:
            stats = pool.stats()
            assert [s["worker"] for s in stats] == [0, 1]
            for s in stats:
                assert s["alive"]
                assert s["restarts"] == 0

    def test_timeout_yields_structured_envelope(self):
        with WorkerPool(1, call_timeout=0.0) as pool:
            envelope = pool.call(0, {"id": 5, "cmd": "ping"}, timeout=0.0)
            # Zero patience: either the response raced in, or a
            # WorkerTimeout envelope — never an exception or a hang.
            if not envelope["ok"]:
                assert envelope["error"]["kind"] == "WorkerTimeout"

    def test_timeouts_increment_the_worker_counter(self):
        from repro.obs import registry

        counter = registry().counter(
            "dbwipes_worker_timeouts_total", labels={"worker": "0"}
        )
        before = counter.value
        observed = 0
        with WorkerPool(1, call_timeout=0.0) as pool:
            for i in range(5):
                envelope = pool.call(0, {"id": i, "cmd": "ping"}, timeout=0.0)
                if not envelope["ok"]:
                    assert envelope["error"]["kind"] == "WorkerTimeout"
                    observed += 1
        # Zero patience over five calls: at least one must have timed
        # out, and the counter moved once per timeout envelope returned.
        assert observed >= 1
        assert counter.value == before + observed


class TestRoutingDispatcher:
    @pytest.fixture()
    def router(self):
        pool = WorkerPool(3)
        dispatcher = RoutingDispatcher(pool)
        yield dispatcher
        dispatcher.close()

    def test_ping_reports_worker_count(self, router):
        envelope = router.handle({"id": 1, "cmd": "ping"})
        assert envelope["ok"]
        assert envelope["result"]["workers"] == 3

    def test_open_routes_by_dataset_and_annotates(self, router):
        envelope = router.handle(
            {"id": 2, "cmd": "open", "args": {"name": "a", "dataset": "intel"}}
        )
        assert envelope["ok"]
        worker = envelope["result"]["worker"]
        assert router.placement_of("a") == (worker, "intel")
        # Same dataset, different session → same shard (cache affinity).
        second = router.handle(
            {"id": 3, "cmd": "open", "args": {"name": "b", "dataset": "intel"}}
        )
        assert second["result"]["worker"] == worker

    def test_reopen_on_other_dataset_rejected_at_front(self, router):
        router.handle(
            {"id": 4, "cmd": "open", "args": {"name": "a", "dataset": "intel"}}
        )
        envelope = router.handle(
            {"id": 5, "cmd": "open", "args": {"name": "a", "dataset": "fec"}}
        )
        assert not envelope["ok"]
        assert envelope["error"]["kind"] == "ServiceError"

    def test_unknown_session_rejected_at_front(self, router):
        envelope = router.handle({"id": 6, "cmd": "sql", "session": "ghost"})
        assert not envelope["ok"]
        assert envelope["error"]["kind"] == "UnknownSession"
        # No worker round-trip happened for it.
        assert all(s["requests"] == 0 for s in router.pool.stats())

    def test_close_drops_placement(self, router):
        router.handle(
            {"id": 7, "cmd": "open", "args": {"name": "a", "dataset": "intel"}}
        )
        assert router.placement_of("a") is not None
        envelope = router.handle({"id": 8, "cmd": "close", "session": "a"})
        assert envelope["ok"]
        assert router.placement_of("a") is None

    def test_stats_scatter_gather(self, router):
        router.handle(
            {"id": 9, "cmd": "open", "args": {"name": "a", "dataset": "intel"}}
        )
        envelope = router.handle({"id": 10, "cmd": "stats"})
        assert envelope["ok"]
        stats = envelope["result"]
        assert stats["workers"] == 3
        assert stats["sessions"] == 1
        assert stats["placements"] == 1
        assert len(stats["per_worker"]) == 3
        assert {"hits", "misses", "hit_rate"} <= set(
            stats["preprocess_cache"]
        )
        for entry in stats["per_worker"]:
            assert "stats" in entry  # each worker answered the broadcast
            assert entry["stats"]["backend"] == "in_process"

    def test_sessions_tagged_with_worker(self, router):
        router.handle(
            {"id": 11, "cmd": "open", "args": {"name": "a", "dataset": "intel"}}
        )
        router.handle(
            {"id": 12, "cmd": "open", "args": {"name": "b", "dataset": "fec"}}
        )
        envelope = router.handle({"id": 13, "cmd": "sessions"})
        assert envelope["ok"]
        tagged = {
            info["name"]: info["worker"]
            for info in envelope["result"]["sessions"]
        }
        assert tagged.keys() == {"a", "b"}
        assert tagged["a"] == router.placement_of("a")[0]

    def test_unknown_command_rejected(self, router):
        envelope = router.handle({"id": 14, "cmd": "frobnicate"})
        assert not envelope["ok"]
        assert envelope["error"]["kind"] == "ProtocolError"

    def test_stats_merge_sums_not_averages(self, router):
        # Sessions land on the shards their datasets hash to; the
        # cluster stats must sum the per-worker cache counters and
        # recompute the hit rate from the sums (averaging per-worker
        # rates is wrong under skew).
        for i, dataset in enumerate(("intel", "fec")):
            router.handle(
                {
                    "id": 20 + i,
                    "cmd": "open",
                    "args": {"name": f"s{i}", "dataset": dataset},
                }
            )
        envelope = router.handle({"id": 30, "cmd": "stats"})
        stats = envelope["result"]
        cache = stats["preprocess_cache"]
        summed = {"hits": 0, "misses": 0, "evictions": 0, "entries": 0}
        for entry in stats["per_worker"]:
            for key in summed:
                summed[key] += entry["stats"]["preprocess_cache"][key]
        for key, total in summed.items():
            assert cache[key] == total
        lookups = cache["hits"] + cache["misses"]
        expected_rate = cache["hits"] / lookups if lookups else 0.0
        assert cache["hit_rate"] == pytest.approx(expected_rate)
        assert stats["worker_requests"] == sum(
            entry["requests"] for entry in stats["per_worker"]
        )

    def test_metrics_scatter_gather(self, router):
        router.handle(
            {"id": 40, "cmd": "open", "args": {"name": "m", "dataset": "intel"}}
        )
        envelope = router.handle({"id": 41, "cmd": "metrics"})
        assert envelope["ok"]
        result = envelope["result"]
        assert result["workers"] == 3
        assert len(result["per_worker"]) == 3
        names = {m["name"] for m in result["merged"]["metrics"]}
        # Front-end counters and worker-process counters meet in one
        # merged snapshot.
        assert "dbwipes_worker_requests_total" in names
        assert "dbwipes_requests_total" in names
        assert "dbwipes_sessions_open" in names

    def test_trace_scatter_gather(self, router):
        envelope = router.handle(
            {"id": 50, "cmd": "open", "args": {"name": "t", "dataset": "intel"}}
        )
        trace_id = envelope["trace"]
        assert isinstance(trace_id, str)
        gathered = router.handle(
            {"id": 51, "cmd": "trace", "args": {"trace_id": trace_id}}
        )
        assert gathered["ok"]
        result = gathered["result"]
        assert result["trace_id"] == trace_id
        names = [s["name"] for s in result["spans"]]
        # The front-end span and the worker-process span joined up.
        assert "server.open" in names
        assert "router.open" in names
        assert "worker.open" in names
        assert {s["trace_id"] for s in result["spans"]} == {trace_id}


class TestMultiWorkerParity:
    """The debug cycle through N workers matches the one-process server."""

    def test_debug_payload_identical_across_tiers(self):
        single = DBWipesServer(port=0)
        host, port = single.start()
        try:
            client = ServiceClient(host, port)
            expected = _debug_payload(client, "solo")
            client.close()
        finally:
            single.stop()
        assert expected["n_predicates"] > 0

        multi = DBWipesServer(port=0, workers=3)
        host, port = multi.start()
        try:
            client = ServiceClient(host, port)
            actual = _debug_payload(client, "fanout")
            stats = client.stats()
            client.close()
        finally:
            multi.stop()

        assert actual == expected
        assert stats["workers"] == 3
        assert stats["placements"] == 1

    def test_cache_affinity_across_sessions(self):
        server = DBWipesServer(port=0, workers=3)
        host, port = server.start()
        try:
            client = ServiceClient(host, port)
            first = _debug_payload(client, "alice")
            second = _debug_payload(client, "bob")
            assert second == first
            stats = client.stats()
            client.close()
        finally:
            server.stop()
        # Both sessions hashed to one worker, so the second debug hit
        # that worker's PreprocessCache: one miss total, one hit.
        cache = stats["preprocess_cache"]
        assert cache["misses"] == 1
        assert cache["hits"] >= 1
        assert cache["hit_rate"] > 0.0
        # Exactly one worker did all the session work.
        busy = [
            w for w in stats["per_worker"] if w["stats"]["sessions"] > 0
        ]
        assert len(busy) == 1
