"""The serving tier: wire protocol, concurrency, eviction, shared caches.

Uses a small deterministic "toy" dataset (one bad group driven by a
categorical tag) so every socket round-trip stays fast; the FEC-scale
closed-loop run lives in ``benchmarks/test_service_throughput.py``.
"""

from __future__ import annotations

import json
import socket
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.db import Database, Table
from repro.errors import ProtocolError, ServiceError
from repro.frontend import Brush, DBWipesSession
from repro.service import (
    DBWipesServer,
    DatasetCatalog,
    PreprocessCache,
    ServiceClient,
    SessionManager,
)
from repro.service.protocol import (
    PROTOCOL_VERSION,
    brush_from_json,
    decode_line,
    encode,
    jsonify,
)

TOY_SQL = "SELECT g, avg(v) AS avg_v FROM toy GROUP BY g ORDER BY g"


def toy_table() -> Table:
    rng = np.random.default_rng(7)
    n_groups, per = 6, 30
    g = np.repeat(np.arange(n_groups), per)
    v = rng.normal(1.0, 0.1, n_groups * per)
    tag = np.array(["ok"] * (n_groups * per), dtype=object)
    bad = (g == 3) & (np.arange(n_groups * per) % per < 8)
    v[bad] += 100.0
    tag[bad] = "bad"
    return Table.from_columns({"g": g, "v": v, "tag": tag}, name="toy")


def toy_catalog(table: Table) -> DatasetCatalog:
    catalog = DatasetCatalog()

    def build() -> Database:
        db = Database()
        db.register(table)
        return db

    catalog.register("toy", build, bootstrap=TOY_SQL)
    return catalog


def run_debug_cycle(client: ServiceClient) -> dict:
    """The scripted toy debug cycle; returns the report payload."""
    client.open("toy")
    client.execute(TOY_SQL)
    client.select_results(brush={"above": 5.0})
    client.zoom()
    client.select_inputs(brush={"above": 50.0})
    client.set_metric("too_high", threshold=2.0)
    return client.debug()


@pytest.fixture(scope="module")
def shared_table():
    return toy_table()


@pytest.fixture(scope="module")
def server(shared_table):
    manager = SessionManager(catalog=toy_catalog(shared_table))
    with DBWipesServer(manager, port=0) as srv:
        yield srv


@pytest.fixture()
def client(server):
    host, port = server.address
    with ServiceClient(host, port, session="roundtrip", timeout=60) as c:
        yield c


@pytest.fixture(scope="module")
def reference_report(shared_table):
    """The single-session answer the service must reproduce."""
    db = Database()
    db.register(shared_table.rename("toy"))
    session = DBWipesSession(db)
    session.execute(TOY_SQL)
    session.select_results(Brush.above(5.0))
    session.zoom()
    session.select_inputs(Brush.above(50.0))
    session.set_metric("too_high", threshold=2.0)
    return session.debug()


class TestProtocolHelpers:
    def test_jsonify_numpy_and_nonfinite(self):
        value = {
            "i": np.int64(3),
            "f": np.float64(1.5),
            "nan": float("nan"),
            "inf": np.inf,
            "arr": np.asarray([1, 2]),
            "bool": np.bool_(True),
            "nested": (np.float32(2.0), {"k": np.nan}),
        }
        out = jsonify(value)
        assert out == {
            "i": 3,
            "f": 1.5,
            "nan": None,
            "inf": None,
            "arr": [1, 2],
            "bool": True,
            "nested": [2.0, {"k": None}],
        }
        json.dumps(out, allow_nan=False)  # strict-JSON safe

    def test_encode_decode_round_trip(self):
        message = {"id": 1, "cmd": "ping", "args": {"x": [1.0, None]}}
        assert decode_line(encode(message)) == message

    def test_decode_rejects_bad_payloads(self):
        with pytest.raises(ProtocolError):
            decode_line(b"not json\n")
        with pytest.raises(ProtocolError):
            decode_line(b"[1, 2]\n")

    def test_brush_from_json_forms(self):
        assert brush_from_json({"above": 2.0}) == Brush.above(2.0)
        assert brush_from_json({"below": 2.0}) == Brush.below(2.0)
        assert brush_from_json({"y1": 0.0}) == Brush(
            -np.inf, np.inf, -np.inf, 0.0
        )
        with pytest.raises(ProtocolError):
            brush_from_json({"weird": 1})
        with pytest.raises(ProtocolError):
            brush_from_json({"x0": "a"})


class TestProtocolRoundTrip:
    """Every wire command, one live socket."""

    def test_full_command_surface(self, client, reference_report):
        pong = client.ping()
        assert pong["pong"] is True and pong["version"] == PROTOCOL_VERSION

        opened = client.open("toy")
        assert opened["dataset"] == "toy"
        assert opened["bootstrap"] == TOY_SQL
        assert opened["snapshot"]["state"] == "new"

        result = client.execute(TOY_SQL)
        assert result["columns"] == ["g", "avg_v"]
        assert result["num_rows"] == 6
        assert result["aggregates"] == ["avg_v"]
        assert not result["truncated"]

        again = client.result(max_rows=2)
        assert again["truncated"] and len(again["rows"]) == 2

        text = client.render()
        assert "avg_v" in text

        selected = client.select_results(brush={"above": 5.0})
        assert selected == [3]

        scatter = client.zoom()
        assert scatter["n"] == 30
        assert scatter["x_label"] == "g" and scatter["y_label"] == "v"
        assert len(scatter["keys"]) == 30

        dprime = client.select_inputs(brush={"above": 50.0})
        assert len(dprime) == 8

        options = client.error_form()
        assert [o["form_id"] for o in options] == ["too_high", "too_low", "not_equal"]

        metric = client.set_metric("too_high", threshold=2.0)
        assert metric == "values are too high (expected <= 2)"

        report = client.debug()
        assert report["n_predicates"] == len(reference_report)
        assert (
            report["predicates"][0]["predicate"]
            == reference_report.best.predicate.describe()
        )
        assert report["epsilon"] == pytest.approx(reference_report.epsilon)
        assert set(report["timings"]) == {
            "preprocess",
            "enumerate_datasets",
            "enumerate_predicates",
            "rank",
        }

        applied = client.apply(0)
        assert applied["applied"] == reference_report.best.predicate.describe()
        assert "WHERE (NOT (" in applied["sql"]
        cleaned = np.asarray(
            [row[1] for row in applied["result"]["rows"]], dtype=np.float64
        )
        assert cleaned.max() < 5.0

        undone = client.undo()
        assert "NOT" not in undone["sql"]
        redone = client.redo()
        assert "NOT" in redone["sql"]
        assert client.sql() == redone["sql"]

        snapshot = client.snapshot()
        assert snapshot["state"] == "executed"
        assert snapshot["applied_predicates"] == [
            reference_report.best.predicate.describe()
        ]
        # Per-stage timing counters survive the wire: a live dashboard
        # can read stage dominance without ad-hoc profiling.
        assert snapshot["timings"]["debug_count"] == 1
        assert set(snapshot["timings"]["last"]) == set(report["timings"])
        assert set(snapshot["timings"]["total"]) == set(report["timings"])

        names = [s["name"] for s in client.sessions()]
        assert "roundtrip" in names
        stats = client.stats()
        assert stats["sessions"] >= 1
        assert stats["preprocess_cache"]["entries"] >= 1

        assert client.close_session() == {"closed": "roundtrip"}
        with pytest.raises(ServiceError) as excinfo:
            client.snapshot()
        assert excinfo.value.kind == "UnknownSession"

    def test_selection_by_explicit_lists(self, client):
        client.open("toy")
        client.execute(TOY_SQL)
        assert client.select_results(rows=[3]) == [3]
        scatter = client.zoom()
        hot = [
            k
            for k, y in zip(scatter["keys"], scatter["y"])
            if y is not None and y > 50.0
        ]
        assert client.select_inputs(tids=hot) == sorted(hot)
        client.close_session()

    def test_debug_without_dprime_uses_influence_fallback(self, client):
        client.open("toy")
        client.execute(TOY_SQL)
        client.select_results(rows=[3])
        client.set_metric("too_high", threshold=2.0)
        report = client.debug()
        assert report["n_dprime"] == 0
        assert report["n_predicates"] > 0
        assert any(
            p["candidate_origin"].startswith("influence@")
            for p in report["predicates"]
        )
        client.close_session()


class TestConcurrentClients:
    def test_eight_clients_distinct_sessions_share_preprocess(self, shared_table,
                                                              reference_report):
        manager = SessionManager(catalog=toy_catalog(shared_table))
        with DBWipesServer(manager, port=0) as server:
            host, port = server.address

            def one_client(i: int) -> str:
                with ServiceClient(
                    host, port, session=f"client-{i}", timeout=120
                ) as c:
                    report = run_debug_cycle(c)
                    return report["predicates"][0]["predicate"]

            with ThreadPoolExecutor(max_workers=8) as pool:
                tops = list(pool.map(one_client, range(8)))

        expected = reference_report.best.predicate.describe()
        assert tops == [expected] * 8
        stats = manager.preprocess_cache.stats()
        # One computation, seven cross-session hits: the debug requests
        # target the same (table, sql, S, metric, agg) identity.
        assert stats["misses"] == 1
        assert stats["hits"] == 7
        assert stats["entries"] == 1
        assert stats["hit_rate"] > 0

    def test_same_session_requests_serialize(self, server):
        host, port = server.address
        with ServiceClient(host, port, session="shared-name", timeout=120) as c:
            c.open("toy")

        def hammer(i: int) -> int:
            with ServiceClient(host, port, session="shared-name", timeout=120) as c:
                result = c.execute(TOY_SQL)
                c.select_results(rows=[3])
                return result["num_rows"]

        with ThreadPoolExecutor(max_workers=4) as pool:
            rows = list(pool.map(hammer, range(8)))
        assert rows == [6] * 8


class TestSessionManagerEviction:
    def make_manager(self, shared_table, **kwargs) -> SessionManager:
        return SessionManager(catalog=toy_catalog(shared_table), **kwargs)

    def test_lru_eviction_drops_least_recently_used(self, shared_table):
        manager = self.make_manager(shared_table, max_sessions=2)
        manager.open("a", "toy")
        manager.open("b", "toy")
        manager.get("a")  # bump a's recency: b is now LRU
        manager.open("c", "toy")
        assert "a" in manager and "c" in manager
        assert "b" not in manager
        assert manager.stats()["lru_evictions"] == 1
        with pytest.raises(ServiceError):
            manager.get("b")

    def test_ttl_expiry_is_lazy_and_counted(self, shared_table):
        now = [0.0]
        manager = self.make_manager(
            shared_table, ttl_seconds=10.0, clock=lambda: now[0]
        )
        manager.open("a", "toy")
        now[0] = 5.0
        manager.get("a")  # refreshes last_used
        now[0] = 14.0
        assert "a" in manager  # 9s idle: still alive
        assert len(manager.list()) == 1
        now[0] = 25.0
        assert manager.list() == []
        assert manager.stats()["ttl_evictions"] == 1
        with pytest.raises(ServiceError) as excinfo:
            manager.get("a")
        assert excinfo.value.kind == "UnknownSession"

    def test_reopen_same_name_same_dataset_is_idempotent(self, shared_table):
        manager = self.make_manager(shared_table)
        first = manager.open("a", "toy")
        again = manager.open("a", "toy")
        assert first is again

    def test_reopen_on_other_dataset_is_an_error(self, shared_table):
        manager = self.make_manager(shared_table)
        manager.catalog.register("toy2", lambda: toy_catalog(shared_table).get("toy"))
        manager.open("a", "toy")
        with pytest.raises(ServiceError):
            manager.open("a", "toy2")

    def test_sessions_share_one_database_object(self, shared_table):
        manager = self.make_manager(shared_table)
        a = manager.open("a", "toy")
        b = manager.open("b", "toy")
        assert a.session.db is b.session.db


class TestMalformedRequests:
    def raw_exchange(self, server, payload: bytes) -> dict:
        host, port = server.address
        with socket.create_connection((host, port), timeout=30) as sock:
            sock.sendall(payload)
            line = sock.makefile("rb").readline()
        return json.loads(line)

    def test_invalid_json_gets_protocol_error_envelope(self, server):
        response = self.raw_exchange(server, b"this is not json\n")
        assert response["ok"] is False
        assert response["id"] is None
        assert response["error"]["kind"] == "ProtocolError"

    def test_non_object_request(self, server):
        response = self.raw_exchange(server, b"[1, 2, 3]\n")
        assert response["ok"] is False
        assert response["error"]["kind"] == "ProtocolError"

    def test_missing_cmd_echoes_id(self, server):
        response = self.raw_exchange(server, b'{"id": 42}\n')
        assert response["ok"] is False
        assert response["id"] == 42
        assert response["error"]["kind"] == "ProtocolError"

    def test_unknown_command(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.call("frobnicate")
        assert excinfo.value.kind == "ProtocolError"
        assert "unknown command" in str(excinfo.value)

    def test_session_command_without_session(self, server):
        host, port = server.address
        with ServiceClient(host, port, session=None, timeout=30) as c:
            with pytest.raises(ServiceError) as excinfo:
                c.call("execute", sql=TOY_SQL)
        assert excinfo.value.kind == "ProtocolError"

    def test_unknown_session_kind(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.call("execute", session="never-opened", sql=TOY_SQL)
        assert excinfo.value.kind == "UnknownSession"

    def test_out_of_order_session_calls_surface_session_errors(self, client):
        client.open("toy")
        with pytest.raises(ServiceError) as excinfo:
            client.debug()
        assert excinfo.value.kind == "SessionError"
        client.close_session()

    def test_selection_needs_exactly_one_form(self, client):
        client.open("toy")
        client.execute(TOY_SQL)
        with pytest.raises(ServiceError) as excinfo:
            client.call("select_results")
        assert excinfo.value.kind == "ProtocolError"
        with pytest.raises(ServiceError):
            client.call("select_results", rows=[1], brush={"above": 0.0})
        client.close_session()

    def test_open_requires_known_dataset(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.open("nope")
        assert excinfo.value.kind == "UnknownDataset"

    def test_oversized_request_is_rejected_without_desync(self, server):
        from repro.service.protocol import MAX_LINE_BYTES

        host, port = server.address
        # Client-side guard: an over-limit request never hits the wire.
        with ServiceClient(host, port, session="big", timeout=30) as c:
            with pytest.raises(ProtocolError):
                c.call("select_inputs", tids=list(range(2_000_000)))
            # The connection is still framed correctly afterwards.
            assert c.ping()["pong"] is True
        # Server-side guard: a raw oversized line gets one error envelope
        # and a closed connection (never parsed as two requests).
        with socket.create_connection((host, port), timeout=30) as sock:
            sock.sendall(b'{"cmd": "ping", "pad": "' + b"x" * MAX_LINE_BYTES)
            sock.sendall(b'"}\n')
            reader = sock.makefile("rb")
            response = json.loads(reader.readline())
            assert response["ok"] is False
            assert response["error"]["kind"] == "ProtocolError"
            assert reader.readline() == b""  # connection closed, no second envelope

    def test_server_survives_malformed_then_serves(self, server):
        self.raw_exchange(server, b"garbage\n")
        host, port = server.address
        with ServiceClient(host, port, session="after-garbage") as c:
            assert c.ping()["pong"] is True


class TestSharedPreprocessCacheRegression:
    def test_two_sessions_same_dataset_one_cache_entry(self, shared_table,
                                                       reference_report):
        cache = PreprocessCache()
        manager = SessionManager(
            catalog=toy_catalog(shared_table), preprocess_cache=cache
        )
        with DBWipesServer(manager, port=0) as server:
            host, port = server.address
            tops = []
            for name in ("first", "second"):
                with ServiceClient(host, port, session=name, timeout=120) as c:
                    report = run_debug_cycle(c)
                    tops.append(report["predicates"][0]["predicate"])
        expected = reference_report.best.predicate.describe()
        assert tops == [expected, expected]
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["misses"] == 1
        assert stats["hits"] >= 1

    def test_preprocess_cache_lru_eviction_counts(self):
        cache = PreprocessCache(max_entries=2)
        for key in ("a", "b", "c"):
            cache.get_or_compute(key, lambda: object())  # type: ignore[arg-type]
        stats = cache.stats()
        assert stats["entries"] == 2
        assert stats["evictions"] == 1
        # "a" was evicted: recomputing it is a miss.
        cache.get_or_compute("a", lambda: object())  # type: ignore[arg-type]
        assert cache.stats()["misses"] == 4


class TestClientDesync:
    """Regression: a response-id mismatch must drop the connection.

    If the client raised but kept the socket, the stream still held a
    framed response for some other id — the *next* call() would consume
    it and silently return the wrong command's result."""

    @staticmethod
    def _fake_server(scripts):
        """A one-thread TCP server answering each connection with canned
        response lines (ignoring what the client actually sent)."""
        import threading

        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind(("127.0.0.1", 0))
        listener.listen(4)

        def run():
            for canned in scripts:
                conn, _ = listener.accept()
                with conn:
                    rfile = conn.makefile("rb")
                    rfile.readline()  # consume the request line
                    for frame in canned:
                        conn.sendall(encode(frame))
                    rfile.close()

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        return listener, thread

    def test_mismatched_id_closes_connection_before_raising(self):
        scripts = [
            # Connection 1: answer request id 1 with a stale envelope for
            # id 999, then leave the real id-1 envelope framed behind it.
            [
                {"id": 999, "ok": True, "result": {"stale": True}},
                {"id": 1, "ok": True, "result": {"fresh": True}},
            ],
            # Connection 2: the client's id counter keeps climbing, so a
            # clean reconnect issues request id 2.
            [{"id": 2, "ok": True, "result": {"reconnected": True}}],
        ]
        listener, thread = self._fake_server(scripts)
        try:
            client = ServiceClient("127.0.0.1", listener.getsockname()[1],
                                   timeout=5.0)
            with pytest.raises(ProtocolError, match="connection closed"):
                client.call("ping")
            # The poisoned connection is gone — the stale id-1 envelope
            # can never be misread as a later call's answer.
            assert client._sock is None and client._rfile is None
            # And the next call transparently reconnects and succeeds.
            assert client.call("ping") == {"reconnected": True}
            client.close()
            thread.join(5.0)
        finally:
            listener.close()

    def test_truncated_line_still_closes_connection(self):
        """The pre-existing truncation path keeps the same contract."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        import threading

        def run():
            conn, _ = listener.accept()
            with conn:
                rfile = conn.makefile("rb")
                rfile.readline()
                conn.sendall(b'{"id": 1, "ok": true')  # no newline, then EOF
                rfile.close()

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        try:
            client = ServiceClient("127.0.0.1", listener.getsockname()[1],
                                   timeout=5.0)
            with pytest.raises((ProtocolError, ServiceError)):
                client.call("ping")
            assert client._sock is None
            thread.join(5.0)
        finally:
            listener.close()
