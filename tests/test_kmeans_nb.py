"""Tests for k-means clustering and naive Bayes."""

import numpy as np
import pytest

from repro.db import Table
from repro.errors import LearnError, NotFittedError
from repro.learn import (
    MixedNaiveBayes,
    choose_k,
    dominant_cluster_mask,
    kmeans,
    silhouette,
    standardize,
)


def two_blobs(n1=60, n2=20, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.normal(0, 1, (n1, 2))
    b = rng.normal(10, 1, (n2, 2))
    return np.concatenate([a, b])


class TestKMeans:
    def test_recovers_two_blobs(self):
        X = two_blobs()
        result = kmeans(X, 2, seed=1)
        labels_a = set(result.labels[:60].tolist())
        labels_b = set(result.labels[60:].tolist())
        assert len(labels_a) == 1 and len(labels_b) == 1
        assert labels_a != labels_b

    def test_inertia_decreases_with_k(self):
        X = two_blobs()
        inertia_1 = kmeans(X, 1, seed=0).inertia
        inertia_2 = kmeans(X, 2, seed=0).inertia
        inertia_3 = kmeans(X, 3, seed=0).inertia
        assert inertia_1 > inertia_2 >= inertia_3

    def test_k_equals_n_zero_inertia(self):
        X = np.array([[0.0], [1.0], [2.0]])
        result = kmeans(X, 3, seed=0)
        assert result.inertia == pytest.approx(0.0, abs=1e-12)

    def test_cluster_sizes_sum(self):
        X = two_blobs()
        result = kmeans(X, 2, seed=0)
        assert result.cluster_sizes().sum() == len(X)

    def test_input_validation(self):
        with pytest.raises(LearnError):
            kmeans(np.zeros((2, 2)), 3)
        with pytest.raises(LearnError):
            kmeans(np.zeros(5), 2)
        with pytest.raises(LearnError):
            kmeans(np.zeros((5, 2)), 0)

    def test_deterministic_given_seed(self):
        X = two_blobs()
        r1 = kmeans(X, 2, seed=42)
        r2 = kmeans(X, 2, seed=42)
        assert np.array_equal(r1.labels, r2.labels)

    def test_standardize(self):
        X = np.array([[1.0, 10.0], [3.0, 10.0]])
        Z, mean, std = standardize(X)
        assert mean.tolist() == [2.0, 10.0]
        assert Z[:, 0].tolist() == [-1.0, 1.0]
        # Zero-variance column passes through centered, not divided by 0.
        assert Z[:, 1].tolist() == [0.0, 0.0]


class TestModelSelection:
    def test_silhouette_high_for_separated(self):
        X = two_blobs()
        result = kmeans(X, 2, seed=0)
        assert silhouette(X, result.labels) > 0.7

    def test_silhouette_single_cluster_zero(self):
        X = two_blobs()
        assert silhouette(X, np.zeros(len(X), dtype=np.int64)) == 0.0

    def test_choose_k_two_blobs(self):
        assert choose_k(two_blobs(), seed=0) == 2

    def test_choose_k_one_blob(self):
        rng = np.random.default_rng(0)
        X = rng.normal(0, 1, (80, 2))
        assert choose_k(X, seed=0) == 1

    def test_dominant_cluster_keeps_majority(self):
        X = two_blobs(60, 20)
        mask = dominant_cluster_mask(X, seed=1)
        assert mask[:60].all()
        assert not mask[60:].any()

    def test_dominant_cluster_keeps_all_when_uniform(self):
        rng = np.random.default_rng(2)
        X = rng.normal(0, 1, (50, 3))
        mask = dominant_cluster_mask(X, seed=0)
        assert mask.all()

    def test_dominant_cluster_empty_input(self):
        assert dominant_cluster_mask(np.zeros((0, 2))).tolist() == []


class TestNaiveBayes:
    @pytest.fixture
    def mixed_table(self):
        rng = np.random.default_rng(4)
        n = 300
        labels = rng.random(n) < 0.4
        x = np.where(labels, rng.normal(5, 1, n), rng.normal(0, 1, n))
        k = np.array(
            [
                ("hot" if rng.random() < 0.8 else "cold")
                if flag
                else ("cold" if rng.random() < 0.8 else "hot")
                for flag in labels
            ],
            dtype=object,
        )
        table = Table.from_columns({"x": x, "k": list(k)}, types={"x": "float", "k": "str"})
        return table, labels

    def test_classifies_separable(self, mixed_table):
        table, labels = mixed_table
        nb = MixedNaiveBayes().fit(table, labels)
        accuracy = (nb.predict(table) == labels).mean()
        assert accuracy > 0.9

    def test_proba_in_unit_interval(self, mixed_table):
        table, labels = mixed_table
        nb = MixedNaiveBayes().fit(table, labels)
        probabilities = nb.predict_proba(table)
        assert (probabilities >= 0).all() and (probabilities <= 1).all()

    def test_density_score_flags_outliers(self):
        rng = np.random.default_rng(9)
        x = np.concatenate([rng.normal(0, 1, 50), [50.0]])
        table = Table.from_columns({"x": x})
        nb = MixedNaiveBayes().fit(table, np.ones(len(x), dtype=bool))
        scores = nb.density_score(table)
        assert scores[-1] == scores.min()

    def test_unseen_category_smoothed(self, mixed_table):
        table, labels = mixed_table
        nb = MixedNaiveBayes().fit(table, labels)
        new = Table.from_columns(
            {"x": [0.0], "k": ["never_seen"]}, types={"x": "float", "k": "str"}
        )
        probability = nb.predict_proba(new)[0]
        assert 0.0 < probability < 1.0

    def test_not_fitted(self, mixed_table):
        table, __ = mixed_table
        with pytest.raises(NotFittedError):
            MixedNaiveBayes().predict(table)

    def test_validation(self, mixed_table):
        table, __ = mixed_table
        with pytest.raises(LearnError):
            MixedNaiveBayes(laplace=0)
        with pytest.raises(LearnError):
            MixedNaiveBayes().fit(table, np.array([True]))
