"""Tests for Scorpion-style predicate hull merging."""

import numpy as np
import pytest

from repro.core import PipelineConfig, RankedProvenance, TooHigh, hull
from repro.core.merger import PredicateMerger
from repro.core.ranker import RankerWeights
from repro.db import Database, Predicate
from repro.db.predicate import CategoricalClause, NumericClause
from repro.errors import PipelineError


class TestHull:
    def test_interval_union(self):
        a = Predicate([NumericClause("x", 10.0, 20.0)])
        b = Predicate([NumericClause("x", 20.0, 31.0)])
        merged = hull(a, b)
        clause = merged.clauses[0]
        assert clause.lo == 10.0 and clause.hi == 31.0

    def test_one_sided_spans(self):
        a = Predicate([NumericClause("x", 5.0, None)])
        b = Predicate([NumericClause("x", 2.0, 9.0)])
        merged = hull(a, b)
        clause = merged.clauses[0]
        assert clause.lo == 2.0 and clause.hi is None

    def test_categorical_union(self):
        a = Predicate([CategoricalClause("k", frozenset(["a"]))])
        b = Predicate([CategoricalClause("k", frozenset(["b", "c"]))])
        merged = hull(a, b)
        assert merged.clauses[0].values == frozenset(["a", "b", "c"])

    def test_multi_column_hull(self):
        a = Predicate([
            CategoricalClause("k", frozenset(["a"])),
            NumericClause("x", 0.0, 10.0),
        ])
        b = Predicate([
            CategoricalClause("k", frozenset(["a"])),
            NumericClause("x", 8.0, 15.0),
        ])
        merged = hull(a, b)
        assert merged is not None
        assert merged.columns() == {"k", "x"}

    def test_different_columns_rejected(self):
        a = Predicate([NumericClause("x", 0.0, 1.0)])
        b = Predicate([NumericClause("y", 0.0, 1.0)])
        assert hull(a, b) is None

    def test_negated_categorical_rejected(self):
        a = Predicate([CategoricalClause("k", frozenset(["a"]), negated=True)])
        b = Predicate([CategoricalClause("k", frozenset(["b"]))])
        assert hull(a, b) is None

    def test_mixed_clause_types_rejected(self):
        a = Predicate([NumericClause("x", 0.0, 1.0)])
        b = Predicate([CategoricalClause("x", frozenset(["a"]))])
        assert hull(a, b) is None

    def test_inclusive_flags_widen(self):
        a = Predicate([NumericClause("x", 1.0, 5.0, True, False)])
        b = Predicate([NumericClause("x", 1.0, 5.0, False, True)])
        merged = hull(a, b)
        clause = merged.clauses[0]
        assert clause.lo_inclusive and clause.hi_inclusive


class TestMergerEndToEnd:
    @pytest.fixture
    def fragmented_workload(self):
        """Anomaly spanning x in [20, 60]: greedy trees fragment it."""
        rng = np.random.default_rng(31)
        n = 2000
        x = rng.uniform(0, 100, n)
        v = rng.normal(50, 5, n)
        bad = (x > 20) & (x < 60) & (rng.random(n) < 0.4)
        v = v + np.where(bad, 60.0, 0.0)
        db = Database()
        db.create_table(
            "t",
            {"x": x, "v": v, "g": np.zeros(n, dtype=np.int64)},
            types={"x": "float", "v": "float", "g": "int"},
        )
        result = db.sql("SELECT g, avg(v) AS m FROM t GROUP BY g")
        tids = np.arange(n)[bad]
        return result, tids

    def test_merging_never_reduces_top_score(self, fragmented_workload):
        result, bad_tids = fragmented_workload
        plain = RankedProvenance(
            PipelineConfig(feature_columns=("x",))
        ).debug(result, [0], TooHigh(52.0), dprime_tids=bad_tids)
        merged = RankedProvenance(
            PipelineConfig(feature_columns=("x",), merge_predicates=True)
        ).debug(result, [0], TooHigh(52.0), dprime_tids=bad_tids)
        assert merged.best.score >= plain.best.score - 1e-9

    def test_merged_source_tagged(self, fragmented_workload):
        result, bad_tids = fragmented_workload
        report = RankedProvenance(
            PipelineConfig(feature_columns=("x",), merge_predicates=True)
        ).debug(result, [0], TooHigh(52.0), dprime_tids=bad_tids)
        # If any merge won, it is traceable; either way the report is valid.
        assert len(report) > 0
        for entry in report:
            if entry.source.startswith("merge("):
                assert entry.error_reduction > 0

    def test_top_n_validation(self):
        with pytest.raises(PipelineError):
            PredicateMerger(weights=RankerWeights(), top_n=1)

    def test_algorithm_validation(self):
        with pytest.raises(PipelineError):
            PredicateMerger(weights=RankerWeights(), algorithm="nope")

    def test_batch_is_byte_identical_to_reference(self, fragmented_workload):
        """The batched greedy pass (pair cache, grouped pairs, batched
        Δε) must reproduce the rescan-everything reference exactly."""
        result, bad_tids = fragmented_workload

        def lines(score_algorithm):
            report = RankedProvenance(
                PipelineConfig(
                    feature_columns=("x",),
                    merge_predicates=True,
                    score_algorithm=score_algorithm,
                )
            ).debug(result, [0], TooHigh(52.0), dprime_tids=bad_tids)
            return [
                "|".join(
                    (
                        entry.predicate.describe(),
                        repr(entry.score),
                        repr(entry.epsilon_after),
                        repr(entry.accuracy),
                        entry.source,
                    )
                )
                for entry in report
            ]

        batch = lines("batch")
        assert batch == lines("per_rule")
        # The workload fragments, so the parity covers accepted merges.
        assert any("merge(" in line for line in batch)
