"""End-to-end tests of the RankedProvenance pipeline."""

import numpy as np
import pytest

from repro.core import PipelineConfig, RankedProvenance, TooHigh, TooLow
from repro.data import (
    IntelConfig,
    SyntheticConfig,
    dirty_group_rows,
    explanation_quality,
    generate_intel,
    generate_synthetic,
)
from repro.db import Database


@pytest.fixture(scope="module")
def intel_setup():
    table, truth = generate_intel(
        IntelConfig(duration_minutes=480, interval_minutes=4.0, n_sensors=30,
                    failing_sensors=(7,))
    )
    db = Database()
    db.register(table)
    result = db.sql(
        "SELECT minute / 30 AS w, avg(temp) AS m, stddev(temp) AS s "
        "FROM readings GROUP BY minute / 30 ORDER BY w"
    )
    return db, result, table, truth


class TestIntelEndToEnd:
    def test_debug_finds_failing_sensor(self, intel_setup):
        __, result, __, truth = intel_setup
        std = np.asarray(result.column("s"))
        S = [i for i in range(result.num_rows) if std[i] > 8]
        F = result.inputs_for(S)
        dprime = np.asarray(F.tids)[np.asarray(F.column("temp")) > 100]
        report = RankedProvenance().debug(
            result, S, TooHigh(4.0), dprime_tids=dprime, agg_name="s"
        )
        assert len(report) > 0
        best = report.best
        quality = explanation_quality(best.predicate, F, truth)
        assert quality.f1 > 0.9
        assert best.relative_error_reduction > 0.9

    def test_without_dprime_still_works(self, intel_setup):
        __, result, __, truth = intel_setup
        std = np.asarray(result.column("s"))
        S = [i for i in range(result.num_rows) if std[i] > 8]
        report = RankedProvenance().debug(result, S, TooHigh(4.0), agg_name="s")
        assert len(report) > 0
        F = result.inputs_for(S)
        quality = explanation_quality(report.best.predicate, F, truth)
        assert quality.precision > 0.8

    def test_timings_recorded(self, intel_setup):
        __, result, __, __ = intel_setup
        std = np.asarray(result.column("s"))
        S = [i for i in range(result.num_rows) if std[i] > 8]
        report = RankedProvenance().debug(result, S, TooHigh(4.0), agg_name="s")
        assert set(report.timings) == {
            "preprocess", "enumerate_datasets", "enumerate_predicates", "rank",
        }
        assert report.total_time() > 0

    def test_report_rendering(self, intel_setup):
        __, result, __, __ = intel_setup
        std = np.asarray(result.column("s"))
        S = [i for i in range(result.num_rows) if std[i] > 8]
        report = RankedProvenance().debug(result, S, TooHigh(4.0), agg_name="s")
        text = report.to_text()
        assert "Ranked predicates" in text
        assert "eps" in text


class TestSyntheticEndToEnd:
    @pytest.mark.parametrize("kind", ["categorical", "numeric", "conjunction"])
    def test_recovers_hidden_predicate_family(self, kind):
        table, truth = generate_synthetic(
            SyntheticConfig(n_rows=4000, predicate_kind=kind, seed=5)
        )
        db = Database()
        db.register(table)
        result = db.sql(
            "SELECT grp, avg(measure) AS m FROM facts GROUP BY grp ORDER BY grp"
        )
        dirty = set(dirty_group_rows(table, truth).tolist())
        S = [i for i in range(result.num_rows) if result.row(i)[0] in dirty]
        values = np.asarray(result.column("m"), dtype=np.float64)
        unselected = np.delete(values, S)
        # The error-form default: "too high" relative to the clean groups.
        threshold = float(unselected.max())
        F = result.inputs_for(S)
        dprime = np.asarray(F.tids)[truth.label_mask(F)]
        # Restrict predicates to descriptive attributes (not the aggregated
        # measure itself): the user wants to know *which rows* are bad, not
        # "the rows with bad values".
        config = PipelineConfig(feature_columns=("a", "b", "x", "y"))
        report = RankedProvenance(config).debug(
            result, S, TooHigh(threshold), dprime_tids=dprime
        )
        assert len(report) > 0
        quality = explanation_quality(report.best.predicate, F, truth)
        assert quality.f1 > 0.7

    def test_config_variants_run(self):
        table, truth = generate_synthetic(SyntheticConfig(n_rows=2000, seed=2))
        db = Database()
        db.register(table)
        result = db.sql("SELECT grp, avg(measure) AS m FROM facts GROUP BY grp")
        values = np.asarray(result.column("m"))
        S = [int(np.argmax(values))]
        for config in (
            PipelineConfig(clean_strategy="none"),
            PipelineConfig(clean_strategy="nb"),
            PipelineConfig(extend_with_subgroups=False),
            PipelineConfig(weight_by_influence=True),
            PipelineConfig(fast_influence=False),
        ):
            report = RankedProvenance(config).debug(result, S, TooHigh(55.0))
            assert report.epsilon >= 0


class TestNegativeSpikeEndToEnd:
    def test_too_low_metric(self, donations_db):
        result = donations_db.sql(
            "SELECT day, sum(amount) AS total FROM donations GROUP BY day "
            "ORDER BY day"
        )
        totals = np.asarray(result.column("total"))
        S = [i for i in range(result.num_rows) if totals[i] < 0]
        if not S:
            S = [int(np.argmin(totals))]
        F = result.inputs_for(S)
        dprime = np.asarray(F.tids)[np.asarray(F.column("amount")) < 0]
        report = RankedProvenance().debug(
            result, S, TooLow(0.0), dprime_tids=dprime
        )
        assert len(report) > 0
        best_sql = report.best.predicate.to_sql()
        assert "REATTRIBUTION" in best_sql or "amount" in best_sql
