"""Tests for planning and execution, including provenance capture."""

import numpy as np
import pytest

from repro.db import Database, Table, parse_select, plan_select
from repro.errors import (
    PlanError,
    TypeMismatchError,
    UnknownColumnError,
    UnknownTableError,
)


class TestPlanner:
    def test_bare_column_without_group_by_rejected(self, sensors_db):
        with pytest.raises(PlanError):
            sensors_db.sql("SELECT room, avg(temp) FROM sensors")

    def test_unknown_column_rejected(self, sensors_db):
        with pytest.raises(UnknownColumnError):
            sensors_db.sql("SELECT avg(nope) FROM sensors")

    def test_unknown_table_rejected(self, sensors_db):
        with pytest.raises(UnknownTableError):
            sensors_db.sql("SELECT avg(temp) FROM nope")

    def test_numeric_agg_on_string_rejected(self, sensors_db):
        with pytest.raises(TypeMismatchError):
            sensors_db.sql("SELECT avg(room) FROM sensors")

    def test_sum_star_rejected(self, sensors_db):
        with pytest.raises(PlanError):
            sensors_db.sql("SELECT sum(*) FROM sensors")

    def test_group_by_without_aggregate_rejected(self, sensors_db):
        with pytest.raises(PlanError):
            sensors_db.sql("SELECT room FROM sensors GROUP BY room")

    def test_having_without_aggregate_rejected(self, sensors_db):
        with pytest.raises(PlanError):
            sensors_db.sql("SELECT temp FROM sensors HAVING temp > 1")

    def test_where_must_be_boolean(self, sensors_db):
        with pytest.raises(PlanError):
            sensors_db.sql("SELECT avg(temp) FROM sensors WHERE temp + 1")

    def test_output_name_collision_resolved(self, sensors_db):
        result = sensors_db.sql(
            "SELECT room, avg(temp) AS room FROM sensors GROUP BY room"
        )
        assert len(set(result.column_names)) == 2

    def test_default_agg_names(self, sensors_db):
        result = sensors_db.sql("SELECT avg(temp), count(*) FROM sensors")
        assert result.column_names == ("avg_temp", "count")

    def test_plan_output_names(self, sensors_table):
        stmt = parse_select("SELECT room, avg(temp) FROM sensors GROUP BY room")
        plan = plan_select(stmt, sensors_table.schema)
        assert plan.output_names() == ("room", "avg_temp")


class TestGlobalAggregates:
    def test_global_avg(self, sensors_db):
        result = sensors_db.sql("SELECT avg(temp) FROM sensors")
        expected = np.mean([20.0, 21.0, 22.0, 120.0, 23.0, 19.5, 20.5])
        assert result.row(0)[0] == pytest.approx(expected)

    def test_global_count_star(self, sensors_db):
        result = sensors_db.sql("SELECT count(*) FROM sensors")
        assert result.row(0)[0] == 7

    def test_global_lineage_covers_everything(self, sensors_db):
        result = sensors_db.sql("SELECT sum(temp) FROM sensors")
        assert sorted(result.lineage(0).tolist()) == list(range(7))

    def test_empty_table_aggregate(self):
        db = Database()
        db.create_table("e", {"x": []}, types={"x": "float"})
        result = db.sql("SELECT count(*), sum(x) FROM e")
        assert result.row(0)[0] == 0

    def test_multiple_aggregates_same_column(self, sensors_db):
        result = sensors_db.sql("SELECT min(temp), max(temp), avg(temp) FROM sensors")
        assert result.row(0)[0] == 19.5
        assert result.row(0)[1] == 120.0


class TestGroupBy:
    def test_group_by_string(self, sensors_db):
        result = sensors_db.sql(
            "SELECT room, count(*) FROM sensors GROUP BY room ORDER BY room"
        )
        assert list(result.iter_rows()) == [("a", 4), ("b", 3)]

    def test_group_by_expression_window(self, sensors_db):
        result = sensors_db.sql(
            "SELECT time / 30 AS w, avg(temp) FROM sensors GROUP BY time / 30 "
            "ORDER BY w"
        )
        windows = result.column("w").tolist()
        assert windows == [0, 1, 2]
        # Window 1 holds times 35, 31, 40 -> temps 21, 120, 20.5.
        assert result.row(1)[1] == pytest.approx(np.mean([21.0, 120.0, 20.5]))

    def test_group_lineage_partition(self, sensors_db):
        result = sensors_db.sql(
            "SELECT room, count(*) FROM sensors GROUP BY room ORDER BY room"
        )
        lineage_a = set(result.lineage(0).tolist())
        lineage_b = set(result.lineage(1).tolist())
        assert lineage_a == {0, 1, 5, 6}
        assert lineage_b == {2, 3, 4}
        assert lineage_a.isdisjoint(lineage_b)

    def test_multi_key_group(self, sensors_db):
        result = sensors_db.sql(
            "SELECT room, sensorid, count(*) FROM sensors "
            "GROUP BY room, sensorid ORDER BY room, sensorid"
        )
        rows = list(result.iter_rows())
        assert rows == [("a", 1, 2), ("a", 3, 2), ("b", 2, 3)]

    def test_group_key_not_in_select_still_partitions(self, sensors_db):
        result = sensors_db.sql(
            "SELECT count(*) FROM sensors GROUP BY room ORDER BY count DESC"
        )
        assert [row[0] for row in result.iter_rows()] == [4, 3]

    def test_where_filters_before_grouping(self, sensors_db):
        result = sensors_db.sql(
            "SELECT room, count(*) FROM sensors WHERE temp < 100 "
            "GROUP BY room ORDER BY room"
        )
        assert list(result.iter_rows()) == [("a", 4), ("b", 2)]

    def test_lineage_respects_where(self, sensors_db):
        result = sensors_db.sql(
            "SELECT room, count(*) FROM sensors WHERE temp < 100 "
            "GROUP BY room ORDER BY room"
        )
        assert 3 not in result.lineage(1).tolist()

    def test_count_of_string_column_counts_non_null(self):
        db = Database()
        db.create_table(
            "t",
            {"k": ["a", None, "b"], "g": [1, 1, 1]},
            types={"k": "str", "g": "int"},
        )
        result = db.sql("SELECT g, count(k) FROM t GROUP BY g")
        assert result.row(0)[1] == 2


class TestHavingOrderLimit:
    def test_having_filters_output(self, sensors_db):
        result = sensors_db.sql(
            "SELECT room, count(*) FROM sensors GROUP BY room HAVING count > 3"
        )
        assert list(result.iter_rows()) == [("a", 4)]

    def test_having_keeps_lineage_aligned(self, sensors_db):
        result = sensors_db.sql(
            "SELECT room, count(*) FROM sensors GROUP BY room HAVING count > 3"
        )
        assert set(result.lineage(0).tolist()) == {0, 1, 5, 6}

    def test_order_by_aggregate(self, sensors_db):
        result = sensors_db.sql(
            "SELECT sensorid, avg(temp) AS m FROM sensors GROUP BY sensorid "
            "ORDER BY m DESC"
        )
        assert result.column("sensorid").tolist() == [2, 1, 3]

    def test_order_by_two_keys(self, sensors_db):
        result = sensors_db.sql(
            "SELECT room, sensorid, count(*) FROM sensors "
            "GROUP BY room, sensorid ORDER BY room DESC, sensorid"
        )
        assert [(r[0], r[1]) for r in result.iter_rows()] == [
            ("b", 2), ("a", 1), ("a", 3),
        ]

    def test_order_by_string_nulls_last_asc(self):
        db = Database()
        db.create_table(
            "t",
            {"k": ["b", None, "a", None], "x": [1.0, 2.0, 3.0, 4.0]},
            types={"k": "str", "x": "float"},
        )
        result = db.sql("SELECT k, x FROM t ORDER BY k")
        assert result.column("k").tolist() == ["a", "b", None, None]

    def test_order_by_string_nulls_last_desc(self):
        # NULLS LAST must hold in *both* directions: a wholesale
        # reversal of the ascending order would float NULLs to the top.
        db = Database()
        db.create_table(
            "t",
            {"k": ["b", None, "a", None], "x": [1.0, 2.0, 3.0, 4.0]},
            types={"k": "str", "x": "float"},
        )
        result = db.sql("SELECT k, x FROM t ORDER BY k DESC")
        assert result.column("k").tolist() == ["b", "a", None, None]

    def test_order_by_numeric_nulls_last_both_directions(self):
        db = Database()
        db.create_table(
            "t",
            {"x": [2.0, None, 1.0]},
            types={"x": "float"},
        )
        ascending = db.sql("SELECT x FROM t ORDER BY x").column("x")
        descending = db.sql("SELECT x FROM t ORDER BY x DESC").column("x")
        assert ascending[:2].tolist() == [1.0, 2.0] and np.isnan(ascending[2])
        assert descending[:2].tolist() == [2.0, 1.0] and np.isnan(descending[2])

    def test_order_by_desc_preserves_tie_order(self):
        db = Database()
        db.create_table(
            "t",
            {"k": ["a", "a", "b"], "x": [1.0, 2.0, 3.0]},
            types={"k": "str", "x": "float"},
        )
        result = db.sql("SELECT k, x FROM t ORDER BY k DESC")
        assert result.column("x").tolist() == [3.0, 1.0, 2.0]

    def test_limit(self, sensors_db):
        result = sensors_db.sql(
            "SELECT sensorid, count(*) FROM sensors GROUP BY sensorid LIMIT 2"
        )
        assert result.num_rows == 2

    def test_limit_keeps_lineage_aligned(self, sensors_db):
        result = sensors_db.sql(
            "SELECT sensorid, avg(temp) AS m FROM sensors GROUP BY sensorid "
            "ORDER BY m DESC LIMIT 1"
        )
        # Top row is sensor 2 (avg inflated by the 120-degree reading).
        assert set(result.lineage(0).tolist()) == {2, 3, 4}


class TestProjectionQueries:
    def test_plain_projection(self, sensors_db):
        result = sensors_db.sql("SELECT sensorid, temp FROM sensors WHERE temp > 21")
        assert result.num_rows == 3
        assert result.aggregate_names == ()

    def test_projection_lineage_is_identity(self, sensors_db):
        result = sensors_db.sql("SELECT temp FROM sensors WHERE temp > 100")
        assert result.lineage(0).tolist() == [3]

    def test_projection_with_expression(self, sensors_db):
        result = sensors_db.sql("SELECT temp * 2 AS t2 FROM sensors WHERE sensorid = 1")
        assert result.column("t2").tolist() == [40.0, 42.0]

    def test_projection_empty_result(self, sensors_db):
        result = sensors_db.sql("SELECT temp FROM sensors WHERE temp > 1000")
        assert result.num_rows == 0


class TestCoarseProvenance:
    def test_pipeline_recorded_in_order(self, sensors_db):
        result = sensors_db.sql(
            "SELECT room, avg(temp) FROM sensors WHERE temp > 0 "
            "GROUP BY room ORDER BY room LIMIT 1"
        )
        described = result.coarse.describe()
        assert described.index("scan") < described.index("filter")
        assert described.index("filter") < described.index("groupby")
        assert described.index("groupby") < described.index("aggregate")
        assert described.index("aggregate") < described.index("order")
        assert described.index("order") < described.index("limit")

    def test_inputs_for_unions_lineage(self, sensors_db):
        result = sensors_db.sql(
            "SELECT room, count(*) FROM sensors GROUP BY room ORDER BY room"
        )
        F = result.inputs_for([0, 1])
        assert len(F) == 7


class TestDatabaseCatalog:
    def test_register_requires_name(self):
        db = Database()
        table = Table.from_columns({"a": [1]})
        with pytest.raises(UnknownTableError):
            db.register(table)

    def test_drop(self, sensors_db):
        sensors_db.drop("sensors")
        assert "sensors" not in sensors_db

    def test_table_names_sorted(self):
        db = Database()
        db.create_table("zz", {"a": [1]})
        db.create_table("aa", {"a": [1]})
        assert db.table_names == ("aa", "zz")

    def test_sql_accepts_parsed_statement(self, sensors_db):
        stmt = parse_select("SELECT count(*) FROM sensors")
        assert sensors_db.sql(stmt).row(0)[0] == 7
