"""Tests for the synthetic dataset generators and ground truth."""

import numpy as np
import pytest

from repro.data import (
    FECConfig,
    IntelConfig,
    REATTRIBUTION_MEMO,
    SyntheticConfig,
    dirty_group_rows,
    explanation_quality,
    generate_fec,
    generate_intel,
    generate_synthetic,
    tid_set_quality,
    walkthrough_query,
)
from repro.db import Database


class TestIntelGenerator:
    @pytest.fixture(scope="class")
    def intel(self):
        return generate_intel(
            IntelConfig(duration_minutes=240, interval_minutes=2.0, n_sensors=20,
                        failing_sensors=(5, 9))
        )

    def test_shape(self, intel):
        table, __ = intel
        assert len(table) == 20 * 120
        assert set(table.schema.names) == {
            "sensorid", "epoch", "minute", "hour", "temp", "humidity",
            "light", "voltage",
        }

    def test_deterministic(self):
        config = IntelConfig(duration_minutes=120, n_sensors=5, failing_sensors=(2,))
        t1, __ = generate_intel(config)
        t2, __ = generate_intel(config)
        np.testing.assert_array_equal(t1.column("temp"), t2.column("temp"))

    def test_failing_sensors_run_hot_after_onset(self, intel):
        table, truth = intel
        temp = np.asarray(table.column("temp"))
        labels = truth.label_mask(table)
        assert temp[labels].min() > 60.0
        assert temp[labels].mean() > 95.0

    def test_healthy_sensors_stay_room_temperature(self, intel):
        table, truth = intel
        temp = np.asarray(table.column("temp"))
        labels = truth.label_mask(table)
        assert temp[~labels].max() < 95.0

    def test_failing_voltage_low(self, intel):
        table, truth = intel
        voltage = np.asarray(table.column("voltage"))
        labels = truth.label_mask(table)
        assert voltage[labels].max() < 2.45
        assert voltage[~labels].min() > 2.5

    def test_truth_covers_only_post_onset(self, intel):
        table, truth = intel
        minute = np.asarray(table.column("minute"))
        labels = truth.label_mask(table)
        assert minute[labels].min() >= 120  # onset at 50% of 240 minutes

    def test_bad_failing_sensor_rejected(self):
        with pytest.raises(ValueError):
            IntelConfig(n_sensors=5, failing_sensors=(99,))

    def test_runs_through_sql_engine(self, intel):
        table, __ = intel
        db = Database()
        db.register(table)
        result = db.sql(
            "SELECT minute / 30 AS w, avg(temp), stddev(temp) FROM readings "
            "GROUP BY minute / 30 ORDER BY w"
        )
        assert result.num_rows == 8


class TestFECGenerator:
    @pytest.fixture(scope="class")
    def fec(self):
        return generate_fec(FECConfig(n_days=200, anomaly_day=150, base_rate=10))

    def test_schema(self, fec):
        table, __ = fec
        assert set(table.schema.names) == {
            "candidate", "amount", "day", "state", "city", "occupation", "memo",
        }

    def test_anomaly_rows_negative_with_memo(self, fec):
        table, truth = fec
        labels = truth.label_mask(table)
        amounts = np.asarray(table.column("amount"))
        memos = np.asarray(table.column("memo"), dtype=object)
        assert (amounts[labels] < 0).all()
        assert all(m == REATTRIBUTION_MEMO for m in memos[labels])

    def test_normal_rows_positive(self, fec):
        table, truth = fec
        labels = truth.label_mask(table)
        amounts = np.asarray(table.column("amount"))
        assert (amounts[~labels] > 0).all()

    def test_truth_predicate_matches_exactly(self, fec):
        table, truth = fec
        quality = explanation_quality(truth.predicate, table, truth)
        assert quality.f1 == 1.0

    def test_event_days_have_spikes(self):
        table, __ = generate_fec(FECConfig(n_days=200, base_rate=20,
                                           events=((100, 5.0),),
                                           anomaly_day=150))
        days = np.asarray(table.column("day"))
        spike = int((days == 100).sum())
        baseline = int((days == 50).sum())
        assert spike > baseline * 2

    def test_anomaly_day_window(self, fec):
        table, truth = fec
        days = np.asarray(table.column("day"))
        labels = truth.label_mask(table)
        assert days[labels].min() >= 147
        assert days[labels].max() <= 153

    def test_walkthrough_query_runs(self, fec):
        table, __ = fec
        db = Database()
        db.register(table)
        result = db.sql(walkthrough_query("MCCAIN"))
        assert result.group_key_names == ("day",)

    def test_invalid_anomaly_candidate(self):
        with pytest.raises(ValueError):
            FECConfig(anomaly_candidate="NOBODY")

    def test_deterministic(self):
        config = FECConfig(n_days=50, anomaly_day=25, base_rate=5)
        t1, truth1 = generate_fec(config)
        t2, truth2 = generate_fec(config)
        assert len(t1) == len(t2)
        np.testing.assert_array_equal(truth1.tids, truth2.tids)


class TestSyntheticGenerator:
    def test_truth_rows_shifted(self):
        table, truth = generate_synthetic(SyntheticConfig(n_rows=3000, seed=1))
        measure = np.asarray(table.column("measure"))
        labels = truth.label_mask(table)
        assert labels.sum() > 0
        assert measure[labels].mean() > measure[~labels].mean() + 30

    def test_hidden_predicate_covers_truth(self):
        table, truth = generate_synthetic(SyntheticConfig(n_rows=3000, seed=2))
        quality = explanation_quality(truth.predicate, table, truth)
        assert quality.recall == 1.0

    def test_dirty_group_rows(self):
        table, truth = generate_synthetic(
            SyntheticConfig(n_rows=3000, n_dirty_groups=3, seed=3)
        )
        assert 1 <= len(dirty_group_rows(table, truth)) <= 3

    def test_legit_outliers_not_in_truth(self):
        table, truth = generate_synthetic(
            SyntheticConfig(n_rows=3000, legit_outlier_rate=0.01, seed=4)
        )
        measure = np.asarray(table.column("measure"))
        labels = truth.label_mask(table)
        legit_extremes = (~labels) & (measure > measure[labels].min())
        assert legit_extremes.sum() > 0  # decoys exist outside ground truth

    def test_predicate_kind_validation(self):
        with pytest.raises(ValueError):
            SyntheticConfig(predicate_kind="nope")

    def test_tid_set_quality(self):
        table, truth = generate_synthetic(SyntheticConfig(n_rows=1000, seed=5))
        quality = tid_set_quality(truth.tids, table, truth)
        assert quality.f1 == 1.0
