"""The partition-parity contract of the execution backends.

The ``partitioned`` backend splits the influence/Δε pass into
group-aligned row blocks and concatenates the per-block results; the
contract (and the whole point of the design) is that every ranked
predicate, score, and rendered rule is **byte-identical** to the
single-pass ``in_process`` backend for every partition count — the
partitioning is an execution detail, never a semantics change.

This file is that contract's enforcement: full FEC debug cycles across
backends × partition counts × scoring algorithms (extending the
fresh-run pattern of ``tests/test_determinism.py``), plus unit coverage
of the partition-plan primitives themselves.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    BACKENDS,
    InProcessBackend,
    PartitionedBackend,
    PipelineConfig,
    make_backend,
    partition_segments,
)
from repro.data import FECConfig, generate_fec, walkthrough_query
from repro.db import Database
from repro.db.segments import SegmentedValues, partition_offsets
from repro.errors import PipelineError, ReproError
from repro.frontend import Brush, DBWipesSession

FEC_CONFIG = FECConfig(
    n_days=150,
    base_rate=10,
    events=((40, 3.0), (90, 4.0)),
    anomaly_day=100,
)

PARTITION_COUNTS = (1, 2, 3, 7)


def _fec_db() -> Database:
    table, __ = generate_fec(FEC_CONFIG)
    db = Database()
    db.register(table)
    return db


def _debug_lines(config: PipelineConfig | None = None) -> list[str]:
    """One scripted §3.2 FEC debug cycle from fresh state, as text."""
    session = DBWipesSession(_fec_db(), config)
    session.execute(walkthrough_query("MCCAIN"))
    session.select_results(Brush.below(0.0))
    session.zoom()
    session.select_inputs(Brush.below(0.0))
    session.set_metric("too_low", threshold=0.0)
    report = session.debug()
    return [
        "|".join(
            (
                ranked.predicate.describe(),
                ranked.predicate.to_sql(),
                repr(ranked.score),
                repr(ranked.epsilon_before),
                repr(ranked.epsilon_after),
                ranked.candidate_origin,
                ranked.source,
                ranked.describe(),
            )
        )
        for ranked in report
    ]


class TestBackendParity:
    """debug() output is byte-identical across backends and fan-outs."""

    @pytest.fixture(scope="class")
    def baseline(self) -> list[str]:
        lines = _debug_lines(PipelineConfig())
        assert lines  # the cycle must actually rank something
        return lines

    @pytest.mark.parametrize("n_partitions", PARTITION_COUNTS)
    @pytest.mark.parametrize("score_algorithm", ["batch", "per_rule"])
    def test_partitioned_matches_in_process(
        self, baseline, n_partitions, score_algorithm
    ):
        lines = _debug_lines(
            PipelineConfig(
                backend="partitioned",
                n_partitions=n_partitions,
                score_algorithm=score_algorithm,
            )
        )
        assert lines == baseline

    def test_per_rule_in_process_matches(self, baseline):
        assert _debug_lines(PipelineConfig(score_algorithm="per_rule")) == baseline

    @pytest.mark.parametrize("n_partitions", (2, 5))
    def test_parity_with_merging(self, n_partitions):
        merged = PipelineConfig(merge_predicates=True)
        partitioned = PipelineConfig(
            merge_predicates=True, backend="partitioned", n_partitions=n_partitions
        )
        first = _debug_lines(merged)
        assert first
        assert _debug_lines(partitioned) == first


class TestBackendWiring:
    def test_make_backend_selects_by_config(self):
        assert isinstance(make_backend(PipelineConfig()), InProcessBackend)
        partitioned = make_backend(
            PipelineConfig(backend="partitioned", n_partitions=3)
        )
        assert isinstance(partitioned, PartitionedBackend)
        assert partitioned.n_partitions == 3

    def test_make_backend_rejects_unknown(self):
        with pytest.raises(PipelineError):
            make_backend(PipelineConfig(backend="quantum"))

    def test_backends_registry(self):
        assert set(BACKENDS) == {"in_process", "partitioned"}

    def test_backend_stats_in_snapshot(self):
        session = DBWipesSession(
            _fec_db(), PipelineConfig(backend="partitioned", n_partitions=4)
        )
        stats = session.snapshot()["backend"]
        assert stats["backend"] == "partitioned"
        assert stats["n_partitions"] == 4
        assert stats["debug_count"] == 0

        session.execute(walkthrough_query("MCCAIN"))
        session.select_results(Brush.below(0.0))
        session.zoom()
        session.select_inputs(Brush.below(0.0))
        session.set_metric("too_low", threshold=0.0)
        session.debug()

        stats = session.snapshot()["backend"]
        assert stats["debug_count"] == 1
        scatter = stats["scatter"]
        # The scatter counters prove the fan-out actually happened.
        assert scatter.get("influence_blocks", 0) > 0
        total_blocks = (
            scatter.get("delta_blocks", 0)
            + scatter.get("rule_blocks", 0)
        )
        assert total_blocks > 0

    def test_in_process_backend_reports_no_scatter(self):
        session = DBWipesSession(_fec_db(), PipelineConfig())
        stats = session.snapshot()["backend"]
        assert stats["backend"] == "in_process"
        assert stats["n_partitions"] == 1
        assert stats["scatter"] == {}


class TestPartitionPrimitives:
    def test_partition_offsets_snap_to_segment_boundaries(self):
        offsets = np.array([0, 4, 4, 9, 10, 16], dtype=np.int64)
        for n in (1, 2, 3, 4, 10):
            bounds = partition_offsets(offsets, n)
            assert bounds[0] == 0 and bounds[-1] == len(offsets) - 1
            assert np.all(np.diff(bounds) > 0)  # no empty blocks
            # Every cut is a segment index — blocks never split a group.
            assert set(bounds.tolist()) <= set(range(len(offsets)))

    def test_partition_offsets_degenerate(self):
        offsets = np.array([0, 5], dtype=np.int64)  # one segment
        assert partition_offsets(offsets, 4).tolist() == [0, 1]
        with pytest.raises(ReproError):
            partition_offsets(offsets, 0)

    def test_partition_segments_blocks_cover_exactly(self):
        values = np.arange(20, dtype=np.float64)
        offsets = np.array([0, 3, 7, 12, 15, 20], dtype=np.int64)
        seg = SegmentedValues(values=values, offsets=offsets)
        plan = partition_segments(seg, 3)
        assert plan.n_blocks >= 1
        reassembled = np.concatenate([block.values for block in plan.blocks])
        np.testing.assert_array_equal(reassembled, values)
        total_segments = sum(
            len(block.offsets) - 1 for block in plan.blocks
        )
        assert total_segments == len(offsets) - 1

    def test_partition_plan_is_memoized(self):
        values = np.arange(10, dtype=np.float64)
        offsets = np.array([0, 5, 10], dtype=np.int64)
        seg = SegmentedValues(values=values, offsets=offsets)
        assert partition_segments(seg, 2) is partition_segments(seg, 2)
        assert partition_segments(seg, 2) is not partition_segments(seg, 1)

    def test_slice_segments_rebases_offsets(self):
        values = np.arange(12, dtype=np.float64)
        offsets = np.array([0, 2, 6, 9, 12], dtype=np.int64)
        seg = SegmentedValues(values=values, offsets=offsets)
        view = seg.slice_segments(1, 3)
        assert view.offsets[0] == 0
        np.testing.assert_array_equal(view.values, values[2:9])
        np.testing.assert_array_equal(view.offsets, [0, 4, 7])


class TestSplitIndexSlicing:
    def test_slice_rows_masks_match_full_index(self):
        from repro.core.preprocessor import Preprocessor
        from repro.core.error_metrics import TooLow

        db = _fec_db()
        result = db.sql(walkthrough_query("MCCAIN"))
        selected = [
            i for i in range(result.num_rows) if (result.row(i)[-1] or 0) < 0
        ]
        pre = Preprocessor().run(result, selected, TooLow(0.0))
        blocks = pre.partition_blocks(3)
        assert len(blocks) >= 2

        predicate = None
        full_index = pre.split_index().take(pre.segment_positions)
        for column, column_index in full_index.columns.items():
            if hasattr(column_index, "thresholds") and len(
                column_index.thresholds
            ):
                from repro.db.predicate import interval

                predicate = interval(
                    column, lo=float(column_index.thresholds[0])
                )
                break
        assert predicate is not None

        global_mask = predicate.mask(pre.segment_table)
        parts = [
            engine.predicate_mask(block_table, predicate)
            for block_table, engine, __ in blocks
        ]
        np.testing.assert_array_equal(np.concatenate(parts), global_mask)
