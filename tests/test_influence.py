"""Tests for leave-one-out influence and subset-removal ε evaluation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Preprocessor, TooHigh, TooLow
from repro.core.influence import leave_one_out_influence, subset_epsilon
from repro.db import Database, get_aggregate
from repro.errors import PipelineError


def _make_groups():
    group_values = [
        np.array([10.0, 12.0, 100.0]),  # group whose avg is inflated
        np.array([11.0, 13.0]),
    ]
    group_tids = [np.array([0, 1, 2]), np.array([3, 4])]
    return group_values, group_tids


class TestLeaveOneOutInfluence:
    def test_culprit_has_highest_influence(self):
        group_values, group_tids = _make_groups()
        result = leave_one_out_influence(
            group_values, group_tids, [0, 1], get_aggregate("avg"), TooHigh(20.0)
        )
        best_tid = result.ranked_tids()[0]
        assert best_tid == 2  # the 100.0 reading

    def test_influence_is_local_error_reduction(self):
        group_values, group_tids = _make_groups()
        metric = TooHigh(20.0)
        result = leave_one_out_influence(
            group_values, group_tids, [0, 1], get_aggregate("avg"), metric
        )
        # Removing the 100 from group 0: avg falls from ~40.67 to 11,
        # so its local error contribution falls from 20.67 to 0.
        culprit = result.scores[2]
        assert culprit == pytest.approx(40.0 + 2.0 / 3.0 - 20.0)

    def test_fast_equals_naive(self):
        group_values, group_tids = _make_groups()
        metric = TooHigh(20.0)
        fast = leave_one_out_influence(
            group_values, group_tids, [0, 1], get_aggregate("avg"), metric, fast=True
        )
        naive = leave_one_out_influence(
            group_values, group_tids, [0, 1], get_aggregate("avg"), metric, fast=False
        )
        np.testing.assert_allclose(fast.scores, naive.scores, rtol=1e-9)

    @settings(max_examples=30, deadline=None)
    @given(
        values=st.lists(
            st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
            min_size=2,
            max_size=25,
        ),
        agg_name=st.sampled_from(["avg", "sum", "min", "max", "stddev", "count"]),
        threshold=st.floats(min_value=-100, max_value=100, allow_nan=False),
    )
    def test_fast_equals_naive_property(self, values, agg_name, threshold):
        array = np.array(values)
        tids = np.arange(len(array))
        metric = TooHigh(threshold)
        agg = get_aggregate(agg_name)
        fast = leave_one_out_influence([array], [tids], [0], agg, metric, fast=True)
        naive = leave_one_out_influence([array], [tids], [0], agg, metric, fast=False)
        spread = float(array.max() - array.min()) if len(array) else 0.0
        atol = 1e-6 + 1e-10 * (1.0 + spread) ** 2
        np.testing.assert_allclose(fast.scores, naive.scores, rtol=1e-6, atol=atol)

    def test_epsilon_uses_global_combine(self):
        group_values, group_tids = _make_groups()
        metric = TooHigh(5.0, combine="sum")
        result = leave_one_out_influence(
            group_values, group_tids, [0, 1], get_aggregate("avg"), metric
        )
        avg0 = group_values[0].mean()
        avg1 = group_values[1].mean()
        assert result.epsilon == pytest.approx((avg0 - 5) + (avg1 - 5))

    def test_top_tids_requires_positive_influence(self):
        # No group exceeds the threshold: nothing is suspicious.
        result = leave_one_out_influence(
            [np.array([1.0, 2.0])], [np.array([0, 1])], [0],
            get_aggregate("avg"), TooHigh(100.0),
        )
        assert len(result.top_tids(0.5)) == 0

    def test_misaligned_inputs_rejected(self):
        with pytest.raises(PipelineError):
            leave_one_out_influence(
                [np.array([1.0])], [], [0], get_aggregate("avg"), TooHigh(0)
            )

    def test_score_of_unknown_tid_zero(self):
        group_values, group_tids = _make_groups()
        result = leave_one_out_influence(
            group_values, group_tids, [0, 1], get_aggregate("avg"), TooHigh(20.0)
        )
        assert result.score_of(np.array([999])).tolist() == [0.0]

    def test_score_of_matches_dict_lookup(self):
        # The searchsorted index must return exactly the per-tid scores
        # (in any request order, with unknown tids interleaved).
        group_values, group_tids = _make_groups()
        result = leave_one_out_influence(
            group_values, group_tids, [0, 1], get_aggregate("avg"), TooHigh(20.0)
        )
        lookup = {int(t): float(s) for t, s in zip(result.tids, result.scores)}
        probe = np.array([4, 2, 999, 0, 3, 1, -5])
        expected = [lookup.get(int(t), 0.0) for t in probe]
        np.testing.assert_allclose(result.score_of(probe), expected)

    def test_score_of_empty_result(self):
        result = leave_one_out_influence(
            [], [], [], get_aggregate("avg"), TooHigh(20.0)
        )
        assert result.score_of(np.array([1, 2])).tolist() == [0.0, 0.0]


class TestSubsetEpsilon:
    def test_removing_culprits_zeroes_error(self):
        group_values, group_tids = _make_groups()
        metric = TooHigh(20.0)
        masks = [np.array([False, False, True]), np.array([False, False])]
        after = subset_epsilon(group_values, masks, get_aggregate("avg"), metric)
        assert after == 0.0

    def test_removing_nothing_keeps_epsilon(self):
        group_values, __ = _make_groups()
        metric = TooHigh(20.0)
        masks = [np.zeros(3, dtype=bool), np.zeros(2, dtype=bool)]
        after = subset_epsilon(group_values, masks, get_aggregate("avg"), metric)
        assert after == pytest.approx(metric(np.array([
            group_values[0].mean(), group_values[1].mean()
        ])))

    def test_emptied_group_contributes_zero(self):
        metric = TooLow(0.0)
        values = [np.array([-10.0, -20.0])]
        masks = [np.array([True, True])]
        assert subset_epsilon(values, masks, get_aggregate("sum"), metric) == 0.0

    def test_matches_query_reexecution(self, donations_db):
        """subset_epsilon must agree with actually re-running the query."""
        result = donations_db.sql(
            "SELECT day, sum(amount) AS total FROM donations GROUP BY day "
            "ORDER BY day"
        )
        totals = np.asarray(result.column("total"), dtype=np.float64)
        S = [i for i in range(result.num_rows) if totals[i] < 0]
        if not S:
            S = [int(np.argmin(totals))]
        metric = TooLow(0.0)
        pre = Preprocessor().run(result, S, metric)
        # Remove all memo'd rows via masks.
        F = pre.F
        memo_tids = set(
            int(t)
            for t in np.asarray(F.tids)[
                np.asarray(F.column("memo"), dtype=object) == "REATTRIBUTION TO SPOUSE"
            ]
        )
        masks = [
            np.fromiter((int(t) in memo_tids for t in tids), dtype=bool, count=len(tids))
            for tids in pre.group_tids
        ]
        fast = subset_epsilon(
            list(pre.group_values), masks, pre.aggregate, metric
        )
        cleaned = donations_db.sql(
            "SELECT day, sum(amount) AS total FROM donations "
            "WHERE memo != 'REATTRIBUTION TO SPOUSE' GROUP BY day ORDER BY day"
        )
        day_to_total = {
            row[0]: row[1] for row in cleaned.iter_rows()
        }
        selected_days = [result.row(i)[0] for i in S]
        new_values = np.array(
            [day_to_total.get(day, np.nan) for day in selected_days]
        )
        assert fast == pytest.approx(metric(new_values))
