"""Parity harness: the histogram split path is answer-identical to the
exact per-threshold reference.

A seeded randomized property sweep (≥200 generated tables mixing
numeric / categorical / NULL columns, class skews, and sample weights)
asserts that, over the same shared :class:`SplitIndex`,

* ``_best_split`` picks the identical split with identical impurity
  gain (up to float-associativity noise far below the tie tolerance);
* the full fitted trees are structurally identical under the
  deterministic tie-breaking (lowest column name, then lowest
  threshold / value).

Every case is reproducible from its printed seed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.db import Table
from repro.learn import CRITERIA, DecisionTree, SplitIndex
from repro.learn.tree import _Node

N_CASES = 220
GAIN_RTOL = 1e-9
GAIN_ATOL = 1e-12


def _random_case(rng: np.random.Generator):
    """One random (table, labels, weights, tree params) scenario."""
    n = int(rng.integers(25, 140))
    columns: dict = {}
    types: dict = {}
    for j in range(int(rng.integers(1, 4))):
        kind = int(rng.integers(0, 3))
        if kind == 0:
            values = rng.normal(0.0, 1.0, n)
        elif kind == 1:
            # Few distinct values: forces threshold ties and shared bins.
            values = rng.integers(0, 6, n).astype(np.float64)
        else:
            values = np.round(rng.random(n) * 4.0, 1)
        if rng.random() < 0.5:
            values = values.copy()
            values[rng.random(n) < 0.15] = np.nan
        columns[f"n{j}"] = values
        types[f"n{j}"] = "float"
    for j in range(int(rng.integers(0, 3))):
        k = int(rng.integers(2, 6))
        values = np.array(
            [f"v{int(i)}" for i in rng.integers(0, k, n)], dtype=object
        )
        if rng.random() < 0.5:
            values[rng.random(n) < 0.2] = None
        columns[f"c{j}"] = list(values)
        types[f"c{j}"] = "str"
    table = Table.from_columns(columns, types=types)

    skew = rng.uniform(0.1, 0.9)
    labels = rng.random(n) < skew
    if not labels.any():
        labels[0] = True
    if labels.all():
        labels[0] = False

    weight_kind = int(rng.integers(0, 3))
    if weight_kind == 0:
        weights = None
    elif weight_kind == 1:
        weights = rng.integers(1, 5, n).astype(np.float64)
    else:
        weights = rng.uniform(0.1, 3.0, n)

    params = dict(
        criterion=CRITERIA[int(rng.integers(0, len(CRITERIA)))],
        max_depth=int(rng.integers(2, 6)),
        min_samples_leaf=int(rng.integers(1, 4)),
        max_thresholds=int(rng.integers(4, 40)),
    )
    return table, labels, weights, params


def _signature(node: _Node):
    """Structural fingerprint: splits (exact floats/values) + leaf stats."""
    if node.is_leaf:
        return ("leaf", node.n_samples, node.weight, node.pos_weight)
    split = node.split
    key = getattr(split, "threshold", None)
    if key is None:
        key = getattr(split, "value")
    return (
        (split.attr, repr(key)),
        _signature(node.left),
        _signature(node.right),
    )


def _fit_pair(table, labels, weights, params):
    """Fit (hist, exact) trees over one shared SplitIndex."""
    index = SplitIndex.build(table, max_thresholds=params.get("max_thresholds", 32))
    hist = DecisionTree(algorithm="hist", **params).fit(
        table, labels, sample_weight=weights, split_index=index
    )
    exact = DecisionTree(algorithm="exact", **params).fit(
        table, labels, sample_weight=weights, split_index=index
    )
    return hist, exact, index


class TestRandomizedParity:
    def test_property_sweep_trees_and_gains_identical(self):
        mismatches = []
        for case in range(N_CASES):
            rng = np.random.default_rng(1000 + case)
            table, labels, weights, params = _random_case(rng)
            hist, exact, index = _fit_pair(table, labels, weights, params)

            # Root split parity: same split object, same gain.
            ctx_h, n = hist._fit_context(
                table, labels, weights, split_index=index
            )
            ctx_e, __ = exact._fit_context(
                table, labels, weights, split_index=index
            )
            all_rows = np.arange(n, dtype=np.int64)
            best_h = hist._best_split(ctx_h, all_rows)
            best_e = exact._best_split(ctx_e, all_rows)
            if (best_h is None) != (best_e is None):
                mismatches.append((case, "root split presence", best_h, best_e))
                continue
            if best_h is not None:
                split_h, gain_h = best_h
                split_e, gain_e = best_e
                if split_h != split_e:
                    mismatches.append((case, "root split", split_h, split_e))
                    continue
                if not np.isclose(gain_h, gain_e, rtol=GAIN_RTOL, atol=GAIN_ATOL):
                    mismatches.append((case, "root gain", gain_h, gain_e))
                    continue

            # Whole-tree parity (splits, thresholds, leaf stats, shape).
            if _signature(hist._root) != _signature(exact._root):
                mismatches.append(
                    (case, "tree", hist.to_text(), exact.to_text())
                )
                continue
            assert hist.n_leaves == exact.n_leaves
            assert hist.depth == exact.depth
        assert not mismatches, (
            f"{len(mismatches)}/{N_CASES} parity failures; first: "
            f"{mismatches[0]}"
        )

    def test_case_count_is_at_least_200(self):
        assert N_CASES >= 200


class TestTargetedParity:
    """Hand-built corners the random sweep might visit only rarely."""

    def test_all_nan_column_is_never_split(self):
        table = Table.from_columns(
            {"x": [np.nan] * 6, "y": [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]},
            types={"x": "float", "y": "float"},
        )
        labels = np.array([1, 1, 1, 0, 0, 0], dtype=bool)
        hist, exact, __ = _fit_pair(table, labels, None, dict(max_thresholds=8))
        assert _signature(hist._root) == _signature(exact._root)
        assert hist._root.split.attr == "y"

    def test_constant_column_and_single_category(self):
        table = Table.from_columns(
            {"x": [5.0] * 5, "c": ["only"] * 5, "z": [1.0, 2.0, 3.0, 4.0, 5.0]},
            types={"x": "float", "c": "str", "z": "float"},
        )
        labels = np.array([1, 1, 0, 0, 0], dtype=bool)
        hist, exact, __ = _fit_pair(table, labels, None, dict(max_thresholds=8))
        assert _signature(hist._root) == _signature(exact._root)
        assert hist._root.split.attr == "z"

    def test_nulls_route_right_in_both_paths(self):
        table = Table.from_columns(
            {"c": ["a", "a", None, None, "b", "b"]}, types={"c": "str"}
        )
        labels = np.array([1, 1, 0, 0, 0, 0], dtype=bool)
        hist, exact, __ = _fit_pair(
            table, labels, None, dict(max_depth=2, min_samples_leaf=1)
        )
        assert _signature(hist._root) == _signature(exact._root)
        assert (hist.predict(table) == exact.predict(table)).all()
        assert not hist.predict(table)[2]  # NULL followed the negatives

    def test_zero_weight_rows(self):
        table = Table.from_columns({"x": [1.0, 2.0, 3.0, 4.0]})
        labels = np.array([1, 1, 0, 0], dtype=bool)
        weights = np.array([1.0, 0.0, 0.0, 1.0])
        hist, exact, __ = _fit_pair(table, labels, weights, dict(max_thresholds=8))
        assert _signature(hist._root) == _signature(exact._root)

    @pytest.mark.parametrize("criterion", CRITERIA)
    def test_extreme_skew_every_criterion(self, criterion):
        rng = np.random.default_rng(7)
        n = 120
        x = rng.normal(0, 1, n)
        labels = np.zeros(n, dtype=bool)
        labels[:3] = True  # 2.5% positives
        x[:3] += 10.0
        table = Table.from_columns({"x": x})
        hist, exact, __ = _fit_pair(
            table, labels, None, dict(criterion=criterion, max_depth=3)
        )
        assert _signature(hist._root) == _signature(exact._root)
