"""Tests for repro.db.aggregates: semantics and removable-state identities.

The load-bearing properties here are the ones the core pipeline relies
on: ``leave_one_out`` must equal the naive per-element recomputation and
``compute_without`` must equal recomputation on the retained subset, for
every aggregate, on arbitrary data including NaNs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.aggregates import AGGREGATE_NAMES, get_aggregate, is_aggregate_name
from repro.errors import AggregateError

ALL = [get_aggregate(name) for name in AGGREGATE_NAMES]

values_strategy = st.lists(
    st.one_of(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        st.just(float("nan")),
    ),
    min_size=1,
    max_size=40,
)


class TestRegistry:
    def test_all_paper_aggregates_present(self):
        for name in ("avg", "sum", "min", "max", "stddev", "count"):
            assert is_aggregate_name(name)

    def test_lookup_case_insensitive(self):
        assert get_aggregate("AVG").name == "avg"

    def test_unknown_rejected(self):
        with pytest.raises(AggregateError):
            get_aggregate("median")


class TestComputeSemantics:
    def test_avg(self):
        assert get_aggregate("avg").compute(np.array([1.0, 2.0, 3.0])) == 2.0

    def test_sum_ignores_nan(self):
        assert get_aggregate("sum").compute(np.array([1.0, np.nan, 2.0])) == 3.0

    def test_count_ignores_nan(self):
        assert get_aggregate("count").compute(np.array([1.0, np.nan])) == 1.0

    def test_count_empty_is_zero(self):
        assert get_aggregate("count").compute(np.array([])) == 0.0

    def test_sum_all_nan_is_nan(self):
        assert np.isnan(get_aggregate("sum").compute(np.array([np.nan])))

    def test_stddev_is_sample_stddev(self):
        values = np.array([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
        expected = values.std(ddof=1)
        assert get_aggregate("stddev").compute(values) == pytest.approx(expected)

    def test_stddev_single_value_nan(self):
        assert np.isnan(get_aggregate("stddev").compute(np.array([3.0])))

    def test_var_matches_numpy(self):
        values = np.array([1.0, 5.0, 9.0, 2.0])
        assert get_aggregate("var").compute(values) == pytest.approx(
            values.var(ddof=1)
        )

    def test_min_max(self):
        values = np.array([3.0, np.nan, -1.0, 7.0])
        assert get_aggregate("min").compute(values) == -1.0
        assert get_aggregate("max").compute(values) == 7.0

    def test_object_input_rejected(self):
        with pytest.raises(AggregateError):
            get_aggregate("avg").compute(np.array(["a"], dtype=object))


class TestLeaveOneOutMatchesNaive:
    """The O(n) closed forms must equal the O(n²) reference exactly."""

    @pytest.mark.parametrize("agg", ALL, ids=lambda a: a.name)
    def test_simple_case(self, agg):
        values = np.array([1.0, 2.0, 3.0, 10.0, -4.0])
        fast = agg.leave_one_out(values)
        naive = agg.leave_one_out_naive(values)
        np.testing.assert_allclose(fast, naive, rtol=1e-9, atol=1e-9)

    @pytest.mark.parametrize("agg", ALL, ids=lambda a: a.name)
    def test_with_nans(self, agg):
        values = np.array([1.0, np.nan, 3.0, np.nan, 5.0])
        fast = agg.leave_one_out(values)
        naive = agg.leave_one_out_naive(values)
        np.testing.assert_allclose(fast, naive, rtol=1e-9, atol=1e-9)

    @pytest.mark.parametrize("agg", ALL, ids=lambda a: a.name)
    def test_duplicated_extremes(self, agg):
        values = np.array([5.0, 5.0, 1.0, 1.0, 3.0])
        fast = agg.leave_one_out(values)
        naive = agg.leave_one_out_naive(values)
        np.testing.assert_allclose(fast, naive, rtol=1e-9, atol=1e-9)

    @pytest.mark.parametrize("agg", ALL, ids=lambda a: a.name)
    def test_singleton(self, agg):
        values = np.array([2.5])
        fast = agg.leave_one_out(values)
        naive = agg.leave_one_out_naive(values)
        np.testing.assert_allclose(fast, naive, rtol=1e-9, atol=1e-9)

    @settings(max_examples=60, deadline=None)
    @given(values=values_strategy, agg_name=st.sampled_from(AGGREGATE_NAMES))
    def test_property(self, values, agg_name):
        agg = get_aggregate(agg_name)
        array = np.array(values, dtype=np.float64)
        fast = agg.leave_one_out(array)
        naive = agg.leave_one_out_naive(array)
        # Conditioning-aware absolute tolerance: variance-family results
        # are only determined up to fp error of order (data spread)² · ulp.
        finite = array[~np.isnan(array)]
        spread = float(finite.max() - finite.min()) if len(finite) else 0.0
        atol = 1e-6 + 1e-12 * (1.0 + spread) ** 2
        np.testing.assert_allclose(fast, naive, rtol=1e-6, atol=atol)


class TestComputeWithoutMatchesRecompute:
    @settings(max_examples=60, deadline=None)
    @given(
        values=values_strategy,
        agg_name=st.sampled_from(AGGREGATE_NAMES),
        data=st.data(),
    )
    def test_property(self, values, agg_name, data):
        agg = get_aggregate(agg_name)
        array = np.array(values, dtype=np.float64)
        mask = np.array(
            data.draw(
                st.lists(
                    st.booleans(), min_size=len(array), max_size=len(array)
                )
            ),
            dtype=bool,
        )
        fast = agg.compute_without(array, mask)
        reference = agg.compute(array[~mask])
        if np.isnan(reference):
            assert np.isnan(fast)
        else:
            finite = array[~np.isnan(array)]
            spread = float(finite.max() - finite.min()) if len(finite) else 0.0
            atol = 1e-6 + 1e-12 * (1.0 + spread) ** 2
            assert fast == pytest.approx(reference, rel=1e-6, abs=atol)

    def test_mask_length_checked(self):
        with pytest.raises(AggregateError):
            get_aggregate("avg").compute_without(
                np.array([1.0, 2.0]), np.array([True])
            )

    def test_remove_everything_is_nan(self):
        out = get_aggregate("avg").compute_without(
            np.array([1.0, 2.0]), np.array([True, True])
        )
        assert np.isnan(out)

    def test_count_remove_everything_is_zero(self):
        out = get_aggregate("count").compute_without(
            np.array([1.0, 2.0]), np.array([True, True])
        )
        assert out == 0.0
